//! The message-passing synchronization protocol engine.
//!
//! This module implements the mechanism the paper proposes — **SynCron** — and the two
//! message-passing baselines it is compared against (Section 5):
//!
//! * **SynCron** ([`MechanismKind::SynCron`]): one Synchronization Engine (SE) per NDP
//!   unit. Cores send requests to their *local* SE; SEs coordinate globally with the
//!   **Master SE** of each variable (the SE of the variable's home unit). Variables are
//!   buffered directly in the SE's Synchronization Table; when an ST overflows, the
//!   integrated hardware scheme falls back to the in-memory `syncronVar` structure,
//!   tracked by indexing counters (Section 4.3).
//! * **SynCron-flat** ([`MechanismKind::SynCronFlat`]): the ablation of Section 6.7.1 —
//!   every core sends its requests directly to the Master SE of the variable.
//! * **Hier** ([`MechanismKind::Hier`]): same hierarchical organization, but each unit's
//!   server is an NDP core that keeps synchronization state in memory, accessed through
//!   its cache hierarchy (similar to the tree-barrier of Gao et al.).
//! * **Central** ([`MechanismKind::Central`]): a single NDP core of the whole system
//!   serves every synchronization request (similar to the Tesseract barrier).
//!
//! The protocol engine is one struct with three orthogonal knobs — topology
//! (hierarchical / flat), backend (SE with ST / server core with memory) and overflow
//! mode (integrated / MiSAR-style) — which is exactly the design space the paper's
//! ablations explore (Sections 6.7.1 and 6.7.3).
//!
//! # Signal coalescing and backoff (extension)
//!
//! A `cond_signal` is fire-and-forget (`req_async`), so a signaler loop that races
//! ahead of the waiters — exactly the Figure 10 condvar microbenchmark — floods the
//! serving engine with signals that find no queued waiter. Under the Central scheme
//! every one of those wasted signals crosses the chip to the single server, and the
//! event count explodes. With [`ProtocolConfig::signal_coalescing`] enabled (the
//! default) the serving engine instead:
//!
//! * **banks** a signal that finds no waiter into a per-variable pending-signal count
//!   (capped by [`ProtocolConfig::pending_signal_cap`]) and ACKs the signaler; a later
//!   `cond_wait` consumes a banked signal exactly once and returns immediately;
//! * **NACKs** a signal that finds the pending count at its cap, replying with a
//!   backoff delay hint (`cond_signal_nack` opcodes); the delay doubles per
//!   consecutive NACK from the same core, from
//!   [`ProtocolConfig::signal_backoff_base`] up to
//!   [`ProtocolConfig::signal_backoff_max`], and resets as soon as one of the core's
//!   signals is accepted.
//!
//! Under this policy the signaling core stalls until the ACK/NACK reply arrives
//! ([`SyncMechanism::blocks_core`]), so each signaler has at most one signal in
//! flight and the serving engine's queue stays bounded.

use syncron_sim::FxHashSet;

use crate::components::{ComponentTables, Grantee, McsRelease};
use crate::counters::{IndexingCounters, SignalCounters};
use crate::mechanism::{
    MechanismKind, SyncContext, SyncMechanism, SyncMechanismStats, DEFAULT_ADAPTIVE_THRESHOLD,
    DEFAULT_SIGNAL_BACKOFF_NS,
};
use crate::message::{MessageScope, SyncMessage};
use crate::policy::{policy_for, LockVariant, SyncPolicy};
use crate::request::{BarrierScope, PrimitiveKind, SyncRequest};
use crate::syncvar::SyncronVar;
use crate::table::{SynchronizationTable, TableInfo};
use syncron_sim::queueing::Serializer;
use syncron_sim::time::{Freq, Time};
use syncron_sim::{Addr, GlobalCoreId, UnitId};

/// How ST overflow is handled (Section 6.7.3 comparison).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OverflowMode {
    /// SynCron's integrated hardware-only scheme: the Master SE falls back to the
    /// in-memory `syncronVar`, local SEs redirect requests with overflow opcodes.
    #[default]
    Integrated,
    /// MiSAR-style overflow where the cores are aborted and synchronization falls back
    /// to one dedicated NDP core for the entire system (`SynCron_CentralOvrfl`).
    MiSarCentral,
    /// MiSAR-style overflow where one NDP core per unit handles the variables homed in
    /// that unit (`SynCron_DistribOvrfl`).
    MiSarDistributed,
}

impl OverflowMode {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            OverflowMode::Integrated => "integrated",
            OverflowMode::MiSarCentral => "central-overflow",
            OverflowMode::MiSarDistributed => "distributed-overflow",
        }
    }
}

/// Whether cores talk to their local engine first, or directly to the master engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Topology {
    /// SynCron / Hier: cores talk to the engine of their own NDP unit.
    Hierarchical,
    /// Central / SynCron-flat: cores talk directly to the serving engine of the
    /// variable (a fixed unit for Central, the variable's home unit otherwise).
    Flat,
}

/// What kind of hardware processes messages at each unit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EngineBackend {
    /// A Synchronization Engine with a Synchronization Table (SynCron).
    SyncronSe,
    /// An NDP core acting as a server, keeping state in memory behind its cache
    /// (Central / Hier).
    ServerCore,
}

/// Configuration of a [`ProtocolMechanism`].
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProtocolConfig {
    /// Which named mechanism this configuration realizes (for reports).
    pub kind: MechanismKind,
    /// Number of NDP units.
    pub units: usize,
    /// Number of NDP cores per unit.
    pub cores_per_unit: usize,
    /// Topology (hierarchical or flat).
    pub topology: Topology,
    /// Backend (SE or server core).
    pub backend: EngineBackend,
    /// For Central: the unit whose server handles every variable.
    pub fixed_server: Option<UnitId>,
    /// ST entries per SE (paper default 64).
    pub st_entries: usize,
    /// Indexing counters per SE (paper default 256).
    pub indexing_counters: usize,
    /// Overflow-management scheme.
    pub overflow_mode: OverflowMode,
    /// Lock-fairness threshold (Section 4.4.2), if enabled.
    pub fairness_threshold: Option<u32>,
    /// SE message service time (Table 5: 12 cycles at 1 GHz).
    pub se_service: Time,
    /// Instruction overhead of a server core handling one message (Central / Hier).
    pub server_service: Time,
    /// Coalesce condvar signals that find no queued waiter into a per-variable
    /// pending-signal count (ACKing the signaler), and NACK-with-delay repeat
    /// signalers once the count reaches [`ProtocolConfig::pending_signal_cap`].
    /// Extension beyond the paper; see the module docs.
    pub signal_coalescing: bool,
    /// Base NACK backoff delay; doubles per consecutive NACK from the same core.
    /// [`Time::ZERO`] keeps the NACK replies but adds no delay.
    pub signal_backoff_base: Time,
    /// Upper bound on the NACK backoff delay.
    pub signal_backoff_max: Time,
    /// Maximum signals banked per condition variable (at least 1).
    pub pending_signal_cap: u16,
    /// Coalesce equal-timestamp messages scheduled back to back for the same
    /// engine into one queued event (see [`ProtocolMechanism::deliver`]). A pure
    /// simulator optimization: delivery order, and therefore every report, is
    /// bit-identical either way.
    pub message_batching: bool,
    /// Process the members of one delivered equal-timestamp batch column-wise
    /// against the component tables: consecutive messages for the same
    /// variable share one slot resolve/release round-trip (see
    /// [`ProtocolMechanism::deliver`]). A pure simulator optimization layered
    /// on `message_batching`: the skipped release-then-resolve pair is a state
    /// no-op under the LIFO slot free list, so every report is bit-identical
    /// either way.
    pub column_batching: bool,
    /// Contention threshold of the [`MechanismKind::Adaptive`] policy: a
    /// variable escalates from the flat to the hierarchical protocol once its
    /// master observes this many grantees queued globally on its lock. Ignored
    /// by the other kinds.
    pub adaptive_threshold: u32,
}

impl ProtocolConfig {
    /// Default configuration for a named mechanism on a `units × cores_per_unit` system.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`MechanismKind::Ideal`], which is not a message-passing
    /// protocol (use [`crate::ideal::IdealMechanism`]).
    pub fn for_kind(kind: MechanismKind, units: usize, cores_per_unit: usize) -> Self {
        let (topology, backend, fixed_server) = match kind {
            MechanismKind::Central => (Topology::Flat, EngineBackend::ServerCore, Some(UnitId(0))),
            MechanismKind::Hier => (Topology::Hierarchical, EngineBackend::ServerCore, None),
            MechanismKind::SynCron => (Topology::Hierarchical, EngineBackend::SyncronSe, None),
            MechanismKind::SynCronFlat => (Topology::Flat, EngineBackend::SyncronSe, None),
            // MCS is hierarchical SynCron with the queue-lock policy for locks.
            MechanismKind::Mcs => (Topology::Hierarchical, EngineBackend::SyncronSe, None),
            // Adaptive starts every variable flat at its home unit; the policy
            // escalates hot variables to the hierarchical protocol at runtime.
            MechanismKind::Adaptive => (Topology::Flat, EngineBackend::ServerCore, None),
            MechanismKind::Ideal => panic!("Ideal is not a protocol mechanism"),
        };
        ProtocolConfig {
            kind,
            units,
            cores_per_unit,
            topology,
            backend,
            fixed_server,
            st_entries: 64,
            indexing_counters: 256,
            overflow_mode: OverflowMode::Integrated,
            fairness_threshold: None,
            // Table 5 / Section 5: each message is served in 12 SE cycles at 1 GHz.
            se_service: Freq::ghz(1.0).cycles_to_ps(12),
            // A server core spends ~30 instructions of control code per message at
            // 2.5 GHz, before its memory accesses to the synchronization variable.
            server_service: Freq::ghz(2.5).cycles_to_ps(30),
            signal_coalescing: true,
            signal_backoff_base: Time::from_ns(DEFAULT_SIGNAL_BACKOFF_NS),
            signal_backoff_max: Time::from_ns(DEFAULT_SIGNAL_BACKOFF_NS * 64),
            pending_signal_cap: 1,
            message_batching: true,
            column_batching: true,
            adaptive_threshold: DEFAULT_ADAPTIVE_THRESHOLD,
        }
    }

    /// Sets the ST size.
    pub fn with_st_entries(mut self, entries: usize) -> Self {
        self.st_entries = entries.max(1);
        self
    }

    /// Sets the number of indexing counters.
    pub fn with_indexing_counters(mut self, counters: usize) -> Self {
        self.indexing_counters = counters.max(1);
        self
    }

    /// Sets the overflow mode.
    pub fn with_overflow_mode(mut self, mode: OverflowMode) -> Self {
        self.overflow_mode = mode;
        self
    }

    /// Sets (or clears) the lock fairness threshold.
    pub fn with_fairness_threshold(mut self, threshold: Option<u32>) -> Self {
        self.fairness_threshold = threshold;
        self
    }

    /// Enables or disables condvar signal coalescing / backoff.
    pub fn with_signal_coalescing(mut self, enabled: bool) -> Self {
        self.signal_coalescing = enabled;
        self
    }

    /// Sets the NACK backoff from a base delay in nanoseconds; the maximum is fixed
    /// at 64x the base (six doublings). `0` keeps NACK replies but without delay.
    pub fn with_signal_backoff_ns(mut self, ns: u64) -> Self {
        self.signal_backoff_base = Time::from_ns(ns);
        self.signal_backoff_max = Time::from_ns(ns.saturating_mul(64));
        self
    }

    /// Sets the maximum number of signals banked per condition variable.
    pub fn with_pending_signal_cap(mut self, cap: u16) -> Self {
        self.pending_signal_cap = cap.max(1);
        self
    }

    /// Enables or disables equal-timestamp message batching.
    pub fn with_message_batching(mut self, enabled: bool) -> Self {
        self.message_batching = enabled;
        self
    }

    /// Enables or disables column-wise processing of delivered batches.
    pub fn with_column_batching(mut self, enabled: bool) -> Self {
        self.column_batching = enabled;
        self
    }

    /// Sets the contention threshold of the adaptive Central↔Hier policy.
    pub fn with_adaptive_threshold(mut self, threshold: u32) -> Self {
        self.adaptive_threshold = threshold.max(1);
        self
    }

    /// The NACK backoff delay after `streak` consecutive NACKs to the same core.
    fn backoff_delay(&self, streak: u32) -> Time {
        if self.signal_backoff_base == Time::ZERO {
            return Time::ZERO;
        }
        self.signal_backoff_base
            .saturating_mul(1u64 << streak.min(16))
            .min(self.signal_backoff_max)
    }
}

// The per-variable sub-states (LocalLock, MasterLock, LocalBarrier,
// MasterBarrier, MasterSem, MasterCond, the MCS queue components) and the slot
// arena that owns them live in `crate::components`: one ownership-of-state
// layer shared by every engine-backed mechanism, with presence-bit claiming and
// free-list recycling (see `ComponentTables`). This module keeps only the
// message mechanics; the per-kind decisions live in `crate::policy`.

/// Per-unit engine state (one SE or one server core).
#[derive(Debug)]
struct Engine {
    busy: Serializer,
    st: SynchronizationTable,
    counters: IndexingCounters,
    /// Per-variable protocol state (see [`ComponentTables`]).
    vars: ComponentTables,
    signals: SignalCounters,
    /// Consecutive-NACK streak per signaling core, dense over the geometry
    /// (`flat core index → streak`); indexes the exponential backoff and is
    /// cleared whenever one of the core's signals is accepted. Kept per
    /// *serving* engine (not globally) so that the streak a core builds on one
    /// engine's condvars never depends on traffic it sends to other engines —
    /// the property that lets each shard of a partitioned run own its engines'
    /// streak state outright.
    signal_streaks: Vec<u32>,
    units: usize,
    cores_per_unit: usize,
}

impl Engine {
    fn new(st_entries: usize, counters: usize, units: usize, cores_per_unit: usize) -> Self {
        Engine {
            busy: Serializer::new(),
            // Pre-size the waitlists of fresh ST entries for the configured geometry
            // so tracking waiters never allocates on the pop/wake hot path.
            st: SynchronizationTable::with_waiter_hint(st_entries, units, cores_per_unit),
            counters: IndexingCounters::new(counters),
            // Pre-size the variable arena from the geometry: an engine buffers at
            // most `st_entries` variables directly, plus (conservatively) one
            // overflowed/served-in-memory variable per local core, so the
            // steady-state hot path neither grows the slot vector nor rehashes
            // the index.
            vars: ComponentTables::with_capacity(st_entries + cores_per_unit),
            signals: SignalCounters::new(),
            signal_streaks: vec![0; units * cores_per_unit],
            units,
            cores_per_unit,
        }
    }
}

/// An opaque synchronization payload traveling between NDP units.
///
/// Produced by the protocol mechanism and handed to
/// [`SyncContext::send_remote`];
/// the system carries it (unopened) to the shard owning the destination unit
/// and hands it back through
/// [`SyncMechanism::deliver_remote`]
/// at the arrival time. The contents stay private to the protocol crate.
#[derive(Clone, Copy, Debug)]
pub struct RemotePayload(PayloadKind);

#[derive(Clone, Copy, Debug)]
enum PayloadKind {
    /// An engine-to-engine message (or re-routed core request) bound for the
    /// engine of `to`.
    Msg { to: UnitId, msg: EngineMsg },
    /// The response completing `core`'s blocking request, about to traverse the
    /// destination unit's local crossbar to reach the core.
    Complete { core: GlobalCoreId },
}

/// A message processed by an engine.
#[derive(Clone, Copy, Debug)]
enum EngineMsg {
    /// A request originating from a core. `direct` marks requests that the serving
    /// engine must handle at the master level (flat topology, overflow redirection or
    /// MiSAR fallback); `fallback` marks MiSAR fallback processing (server-core cost
    /// model even under the SE backend).
    CoreReq {
        core: GlobalCoreId,
        req: SyncRequest,
        direct: bool,
        fallback: bool,
    },
    LockAcquireGlobal {
        from: UnitId,
        var: Addr,
    },
    LockReleaseGlobal {
        from: UnitId,
        var: Addr,
    },
    LockGrantGlobal {
        var: Addr,
    },
    BarrierArriveGlobal {
        from: UnitId,
        var: Addr,
        count: u32,
        participants: u32,
    },
    BarrierDepartGlobal {
        var: Addr,
    },
    /// MCS: a waiter's engine asks the master to swap the new node instance
    /// `(core, seq)` into the queue's tail pointer.
    McsEnqueue {
        core: GlobalCoreId,
        seq: u32,
        var: Addr,
    },
    /// MCS: the master tells the predecessor instance `(pred, pred_seq)` that
    /// `succ` is now linked behind it.
    McsLink {
        pred: GlobalCoreId,
        pred_seq: u32,
        succ: GlobalCoreId,
        var: Addr,
    },
    /// MCS: a releasing holder with no linked successor asks the master to swap
    /// the tail back to free — valid only if instance `(core, seq)` is still the
    /// tail (otherwise a link to the holder is already in flight).
    McsReleaseTail {
        core: GlobalCoreId,
        seq: u32,
        var: Addr,
    },
    /// MCS: the master confirmed the tail swap for instance `(core, seq)`; the
    /// waiter's engine reaps the node.
    McsNodeFree {
        core: GlobalCoreId,
        seq: u32,
        var: Addr,
    },
}

impl EngineMsg {
    fn var(&self) -> Addr {
        match *self {
            EngineMsg::CoreReq { req, .. } => req.var(),
            EngineMsg::LockAcquireGlobal { var, .. }
            | EngineMsg::LockReleaseGlobal { var, .. }
            | EngineMsg::LockGrantGlobal { var }
            | EngineMsg::BarrierArriveGlobal { var, .. }
            | EngineMsg::BarrierDepartGlobal { var }
            | EngineMsg::McsEnqueue { var, .. }
            | EngineMsg::McsLink { var, .. }
            | EngineMsg::McsReleaseTail { var, .. }
            | EngineMsg::McsNodeFree { var, .. } => var,
        }
    }

    fn primitive(&self) -> PrimitiveKind {
        match self {
            EngineMsg::CoreReq { req, .. } => req.primitive(),
            EngineMsg::LockAcquireGlobal { .. }
            | EngineMsg::LockReleaseGlobal { .. }
            | EngineMsg::LockGrantGlobal { .. }
            | EngineMsg::McsEnqueue { .. }
            | EngineMsg::McsLink { .. }
            | EngineMsg::McsReleaseTail { .. }
            | EngineMsg::McsNodeFree { .. } => PrimitiveKind::Lock,
            EngineMsg::BarrierArriveGlobal { .. } | EngineMsg::BarrierDepartGlobal { .. } => {
                PrimitiveKind::Barrier
            }
        }
    }
}

/// Deferred effect of processing a message, applied after the engine borrow ends.
#[derive(Clone, Copy, Debug)]
enum Outcome {
    /// Complete a blocking request for `core`, responding from the processing engine.
    Complete { core: GlobalCoreId },
    /// Send a message to another engine (global scope).
    Send {
        to: UnitId,
        msg: EngineMsg,
        overflow: bool,
    },
    /// Route a brand-new core request (used by condition variables to release or
    /// re-acquire the associated lock on behalf of a waiting core).
    Inject {
        core: GlobalCoreId,
        req: SyncRequest,
    },
    /// NACK a signaler whose signal could neither be delivered nor banked: the reply
    /// completes the core only after the backoff delay.
    Nack { core: GlobalCoreId, delay: Time },
    /// Charge a MiSAR abort broadcast to every core of the processing engine's unit.
    MisarAbortBroadcast,
    /// Charge the MiSAR "switch back to hardware" notification message.
    MisarSwitchBack { core: GlobalCoreId },
}

/// One in-flight delivery: every message bound for `unit` that was merged into
/// this queued event (usually exactly one).
///
/// The first — and overwhelmingly most common only — message lives inline in
/// the slab slot; merged follow-ups spill to the `rest` vector. Keeping the
/// singleton case pointer-free matters: the slab bracketed every message event
/// before batching existed, and a heap indirection per message showed up as a
/// measurable regression.
#[derive(Debug)]
struct PendingBatch {
    unit: UnitId,
    /// Guards against double delivery (slab slots are recycled).
    live: bool,
    first: EngineMsg,
    rest: Vec<EngineMsg>,
}

impl PendingBatch {
    fn idle() -> Self {
        PendingBatch {
            unit: UnitId(0),
            live: false,
            first: EngineMsg::LockGrantGlobal { var: Addr(0) },
            rest: Vec::new(),
        }
    }
}

/// The batch `schedule_msg` may still append to: the most recently scheduled
/// one, valid while the system-wide push count (`stamp`) has not moved.
#[derive(Clone, Copy, Debug)]
struct OpenBatch {
    token: u32,
    unit: UnitId,
    at: Time,
    stamp: u64,
}

/// The message-passing protocol mechanism (SynCron, SynCron-flat, Hier, Central,
/// MCS, Adaptive).
#[derive(Debug)]
pub struct ProtocolMechanism {
    config: ProtocolConfig,
    /// The mechanism's decision layer (fixed at construction): where requests
    /// are served, how locks arbitrate, whether placement adapts at runtime.
    /// The engines below own all state; the policy owns none of it.
    policy: Box<dyn SyncPolicy>,
    engines: Vec<Engine>,
    /// In-flight scheduled message batches, indexed by their event token. A slab
    /// with a free list (rather than a map): scheduling and delivery bracket
    /// every message event, so this sits on the hottest protocol path, and slot
    /// reuse — message buffers included — keeps the vector as small as the
    /// in-flight high-water mark.
    pending: Vec<PendingBatch>,
    pending_free: Vec<u32>,
    /// See [`OpenBatch`]; `None` when nothing can be appended to.
    open_batch: Option<OpenBatch>,
    /// Reusable buffer the delivered batch is swapped into, so processing can
    /// borrow the mechanism mutably while walking the messages.
    batch_scratch: Vec<EngineMsg>,
    /// Reusable outcome buffer for message processing: outcomes never nest
    /// (applying them routes/schedules but does not process further messages
    /// synchronously), so one buffer serves every `deliver` without a per-message
    /// allocation.
    outcome_scratch: Vec<Outcome>,
    stats: SyncMechanismStats,
    /// Variables that have been handed to the MiSAR-style software fallback. Once a
    /// variable overflows anywhere, every SE redirects it to the fallback server so
    /// that acquire/release pairs stay consistent (the cores were "aborted" to the
    /// alternative solution, Section 6.7.3).
    misar_fallback: FxHashSet<Addr>,
}

impl ProtocolMechanism {
    /// Creates a mechanism from a configuration.
    pub fn new(config: ProtocolConfig) -> Self {
        let engines = (0..config.units)
            .map(|_| {
                Engine::new(
                    config.st_entries,
                    config.indexing_counters,
                    config.units,
                    config.cores_per_unit,
                )
            })
            .collect();
        ProtocolMechanism {
            policy: policy_for(&config),
            config,
            engines,
            pending: Vec::new(),
            pending_free: Vec::new(),
            open_batch: None,
            batch_scratch: Vec::new(),
            outcome_scratch: Vec::new(),
            stats: SyncMechanismStats::default(),
            misar_fallback: FxHashSet::default(),
        }
    }

    /// The configuration this mechanism was built from.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    fn master_of(&self, ctx: &dyn SyncContext, var: Addr) -> UnitId {
        self.policy.master_of(ctx, var)
    }

    /// Whether `req`, delivered non-direct at `unit`, is a partial across-unit
    /// barrier arrival that this SE merely forwards to the Master SE (one-level
    /// communication, Section 4.1.2) without tracking the variable locally.
    fn is_partial_barrier_forward(
        &self,
        ctx: &dyn SyncContext,
        unit: UnitId,
        req: &SyncRequest,
    ) -> bool {
        let SyncRequest::BarrierWait {
            var,
            participants,
            scope,
        } = *req
        else {
            return false;
        };
        scope == BarrierScope::AcrossUnits
            && self.policy.topology(var) == Topology::Hierarchical
            && participants != (self.config.units * self.config.cores_per_unit) as u32
            && self.master_of(ctx, var) != unit
    }

    fn local_bytes() -> u64 {
        SyncMessage::wire_bytes(MessageScope::Local)
    }

    fn global_bytes() -> u64 {
        SyncMessage::wire_bytes(MessageScope::Global)
    }

    fn schedule_msg(&mut self, ctx: &mut dyn SyncContext, at: Time, unit: UnitId, msg: EngineMsg) {
        // Equal-timestamp batching: if this message targets the same engine at
        // the same time as the most recently scheduled one, and *nothing else*
        // was pushed onto the event queue in between (the schedule-stamp
        // watermark), then the two deliveries would pop back to back anyway —
        // appending to the open batch delivers them in one event without
        // changing the global delivery order by a single bit. Contended
        // broadcast/wake phases schedule O(1) events where they scheduled
        // O(waiters).
        let stamp = ctx.schedule_stamp();
        if self.config.message_batching {
            if let (Some(open), Some(stamp)) = (self.open_batch, stamp) {
                if open.unit == unit && open.at == at && open.stamp == stamp {
                    let batch = &mut self.pending[open.token as usize];
                    debug_assert!(batch.live);
                    batch.rest.push(msg);
                    return;
                }
            }
        }
        let token = match self.pending_free.pop() {
            Some(slot) => slot,
            None => {
                self.pending.push(PendingBatch::idle());
                (self.pending.len() - 1) as u32
            }
        };
        let batch = &mut self.pending[token as usize];
        debug_assert!(!batch.live && batch.rest.is_empty());
        batch.unit = unit;
        batch.live = true;
        batch.first = msg;
        ctx.schedule(at, unit, u64::from(token));
        // `SyncContext::schedule` pushes exactly one event, so the post-push
        // count is `stamp + 1`: that watermarks "no pushes since this batch's
        // event" without a second context call.
        self.open_batch = stamp.map(|stamp| OpenBatch {
            token,
            unit,
            at,
            stamp: stamp + 1,
        });
    }

    /// Charges the message cost from `from` to engine `to` and schedules delivery.
    ///
    /// Cross-unit messages leave through [`SyncContext::send_remote`] and finish
    /// their journey in [`SyncMechanism::deliver_remote`] on the destination
    /// unit's shard; the message statistics are counted here, at the send side,
    /// so a shard's counters describe the traffic *its* engines originate.
    fn send_engine_msg(
        &mut self,
        ctx: &mut dyn SyncContext,
        at: Time,
        from: UnitId,
        to: UnitId,
        msg: EngineMsg,
        overflow: bool,
    ) {
        if from != to {
            if overflow {
                self.stats.overflow_messages += 1;
            } else {
                self.stats.global_messages += 1;
            }
            ctx.send_remote(
                at,
                from,
                to,
                Self::global_bytes(),
                RemotePayload(PayloadKind::Msg { to, msg }),
            );
            return;
        }
        self.schedule_msg(ctx, at, to, msg);
    }

    /// Sends the response that completes a blocking request, from engine `from` back to
    /// `core`, starting at time `at`.
    ///
    /// When the response crosses units it travels as a [`RemotePayload`]; the
    /// final crossbar hop — and the completion itself — happen in
    /// [`SyncMechanism::deliver_remote`] on the core's shard at the arrival
    /// time (`local_messages`/`completions` are therefore counted where the
    /// core lives, `global_messages` where the response was sent).
    fn complete_core(
        &mut self,
        ctx: &mut dyn SyncContext,
        at: Time,
        from: UnitId,
        core: GlobalCoreId,
    ) {
        if from != core.unit {
            self.stats.global_messages += 1;
            ctx.send_remote(
                at,
                from,
                core.unit,
                Self::global_bytes(),
                RemotePayload(PayloadKind::Complete { core }),
            );
            return;
        }
        let t = at + ctx.local_hop(core.unit, Self::local_bytes());
        self.stats.local_messages += 1;
        self.stats.completions += 1;
        ctx.complete(core, t);
    }

    /// Service time of one message at engine `unit`, including any memory accesses.
    /// `use_memory` forces uncached `syncronVar` accesses (SynCron overflow path);
    /// `fallback` forces server-core processing (MiSAR fallback).
    fn service_time(
        &mut self,
        ctx: &mut dyn SyncContext,
        unit: UnitId,
        var: Addr,
        use_memory: bool,
        fallback: bool,
    ) -> Time {
        match self.config.backend {
            EngineBackend::ServerCore => {
                // The server core reads and updates the synchronization variable through
                // its cache hierarchy.
                let read = ctx.sync_mem_access(unit, var, false, true);
                let write = ctx.sync_mem_access(unit, var, true, true);
                self.stats.mem_accesses += 2;
                self.config.server_service + read + write
            }
            EngineBackend::SyncronSe => {
                if fallback {
                    // The MiSAR-style software fallback synchronizes through main
                    // memory: without shared caches or hardware coherence there is no
                    // faster place for the alternative solution to live (Section 4.5).
                    let read = ctx.sync_mem_access(unit, var, false, false);
                    let write = ctx.sync_mem_access(unit, var, true, false);
                    self.stats.mem_accesses += 2;
                    self.config.server_service + read + write
                } else if use_memory {
                    // Overflow: the SE reads and writes the in-memory syncronVar.
                    let read = ctx.sync_mem_access(unit, var, false, false);
                    let write = ctx.sync_mem_access(unit, var, true, false);
                    self.stats.mem_accesses += 2;
                    self.config.se_service + read + write
                } else {
                    self.config.se_service
                }
            }
        }
    }

    /// Resolves the ST state for a message about `var` at engine `unit`.
    /// Returns `(needs_memory, must_redirect)`.
    ///
    /// `counter_action` is +1 for acquire-type core requests, -1 for release-type core
    /// requests and 0 for SE-to-SE messages; `count_stat` controls whether an overflow
    /// is counted towards the overflowed-request statistic (redirected requests are
    /// only counted once, at the SE that first observed the overflow).
    #[allow(clippy::too_many_arguments)]
    fn st_resolve(
        &mut self,
        ctx: &dyn SyncContext,
        now: Time,
        unit: UnitId,
        var: Addr,
        kind: PrimitiveKind,
        counter_action: i8,
        count_stat: bool,
    ) -> (bool, bool) {
        if self.config.backend != EngineBackend::SyncronSe {
            return (false, false);
        }
        let is_master = self.master_of(ctx, var) == unit;
        // A variable already handed to the MiSAR software fallback stays there for
        // every SE, so acquire/release pairs are always served by the same place.
        if self.config.overflow_mode != OverflowMode::Integrated
            && self.misar_fallback.contains(&var)
        {
            if count_stat {
                self.stats.overflowed_requests += 1;
            }
            return (false, true);
        }
        let engine = &mut self.engines[unit.index()];
        if engine.st.lookup(var).is_some() {
            return (false, false);
        }
        if !engine.counters.is_overflowed(var) && !engine.st.is_full() {
            engine.st.allocate(now, var, kind);
            return (false, false);
        }
        // Overflow.
        if count_stat {
            self.stats.overflowed_requests += 1;
        }
        if self.config.overflow_mode != OverflowMode::Integrated {
            self.misar_fallback.insert(var);
        }
        match self.config.overflow_mode {
            OverflowMode::Integrated => {
                match counter_action {
                    1 => engine.counters.increment(var),
                    -1 => engine.counters.decrement(var),
                    _ => {}
                }
                if is_master {
                    // The Master SE services the variable via the in-memory syncronVar.
                    (true, false)
                } else {
                    // A local SE overflowed: redirect to the Master SE with overflow
                    // opcodes and track the variable in the indexing counters.
                    (false, true)
                }
            }
            OverflowMode::MiSarCentral | OverflowMode::MiSarDistributed => (false, true),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_core_request(
        &mut self,
        unit: UnitId,
        slot: usize,
        ctx: &mut dyn SyncContext,
        core: GlobalCoreId,
        req: SyncRequest,
        direct: bool,
        out: &mut Vec<Outcome>,
    ) {
        let cores_per_unit = self.config.cores_per_unit;
        let total_cores = (self.config.units * cores_per_unit) as u32;
        let master = self.master_of(ctx, req.var());
        let fairness = self.config.fairness_threshold;
        let coalescing = self.config.signal_coalescing;
        let pending_cap = self.config.pending_signal_cap;
        let mcs = self.policy.lock_variant() == LockVariant::McsQueue;
        let config = self.config;
        let engine = &mut self.engines[unit.index()];

        match req {
            SyncRequest::LockAcquire { var } if mcs => {
                // MCS queue lock: claim a queue node at the requester's own
                // engine, then swap the instance into the master's tail pointer.
                // The node stays here — the handoff chain never queues waiters
                // at the master, so there is no broadcast wake and no ownership
                // bouncing.
                let nodes = engine.vars.mcs_nodes_mut(slot);
                nodes.ensure(cores_per_unit);
                let seq = nodes.enqueue(core.core.index());
                if unit == master {
                    mcs_master_enqueue(engine, slot, var, core, seq, &mut *out);
                } else {
                    out.push(Outcome::Send {
                        to: master,
                        msg: EngineMsg::McsEnqueue { core, seq, var },
                        overflow: false,
                    });
                }
            }
            SyncRequest::LockRelease { var } if mcs => {
                let nodes = engine.vars.mcs_nodes_mut(slot);
                match nodes.release(core.core.index()) {
                    McsRelease::Handoff(succ) => {
                        // O(1) handoff: the successor was already linked, so the
                        // grant goes straight to it without a master round-trip.
                        mcs_cleanup_nodes(engine, slot, var);
                        out.push(Outcome::Complete { core: succ });
                    }
                    McsRelease::TailRace(seq) => {
                        // No successor linked yet: ask the master to swap the
                        // tail back to free. If someone enqueued meanwhile, the
                        // master ignores this and the in-flight link hands off.
                        if unit == master {
                            mcs_master_release_tail(engine, slot, var, core, seq, &mut *out);
                        } else {
                            out.push(Outcome::Send {
                                to: master,
                                msg: EngineMsg::McsReleaseTail { core, seq, var },
                                overflow: false,
                            });
                        }
                    }
                }
            }
            SyncRequest::LockAcquire { var } => {
                if direct {
                    master_lock_acquire(engine, slot, var, Grantee::Core(core), &mut *out);
                } else {
                    let ll = engine.vars.local_lock_mut(slot);
                    ll.waiters.push_back(core);
                    if let Some(e) = engine.st.lookup_mut(var) {
                        e.local_waitlist.set(core.core.index());
                    }
                    let ll = engine.vars.local_lock_mut(slot);
                    if ll.has_ownership {
                        if ll.holder.is_none() {
                            grant_local_lock(engine, slot, var, &mut *out);
                        }
                    } else if !ll.pending_global {
                        ll.pending_global = true;
                        out.push(Outcome::Send {
                            to: master,
                            msg: EngineMsg::LockAcquireGlobal { from: unit, var },
                            overflow: false,
                        });
                    }
                }
            }
            SyncRequest::LockRelease { var } => {
                let locally_held = engine
                    .vars
                    .local_lock(slot)
                    .is_some_and(|ll| ll.has_ownership && ll.holder == Some(core));
                if direct {
                    master_lock_release(engine, slot, var, Grantee::Core(core), &mut *out);
                } else if !locally_held {
                    // The core's acquire was granted at the master level (ST overflow
                    // redirection), so its release belongs there too. Processing it
                    // locally sent a phantom release on behalf of a unit that holds
                    // no ownership, desynchronizing the master's grant queue — under
                    // ST overflow this stranded locks forever (the master believed a
                    // core owned a lock whose release it never saw).
                    //
                    // Drop any ST entry this delivery allocated: the variable is not
                    // tracked by this SE (there is no local lock state to mirror),
                    // and leaving it would pin an ST slot forever.
                    if unit != master && engine.vars.local_lock(slot).is_none() {
                        engine.st.release(Time::ZERO, var);
                    }
                    out.push(Outcome::Send {
                        to: master,
                        msg: EngineMsg::CoreReq {
                            core,
                            req,
                            direct: true,
                            fallback: false,
                        },
                        // This hand-off only exists because the matching acquire was
                        // redirected by ST overflow; classify its traffic the same way.
                        overflow: true,
                    });
                } else {
                    let ll = engine.vars.local_lock_mut(slot);
                    ll.holder = None;
                    let over_threshold =
                        fairness.is_some_and(|t| ll.local_grants >= t) && !ll.waiters.is_empty();
                    if !ll.waiters.is_empty() && !over_threshold {
                        grant_local_lock(engine, slot, var, &mut *out);
                    } else {
                        // No more local requests (or fairness hand-off): return the lock
                        // to the Master SE with one aggregated release message.
                        ll.has_ownership = false;
                        ll.local_grants = 0;
                        out.push(Outcome::Send {
                            to: master,
                            msg: EngineMsg::LockReleaseGlobal { from: unit, var },
                            overflow: false,
                        });
                        if over_threshold {
                            // Re-request ownership for the still-waiting local cores.
                            ll.pending_global = true;
                            out.push(Outcome::Send {
                                to: master,
                                msg: EngineMsg::LockAcquireGlobal { from: unit, var },
                                overflow: false,
                            });
                        } else {
                            engine.vars.remove_local_lock(slot);
                            engine.st.release(Time::ZERO, var);
                        }
                    }
                }
            }
            SyncRequest::BarrierWait {
                var,
                participants,
                scope,
            } => {
                let local_only = scope == BarrierScope::WithinUnit;
                if direct {
                    let mb = engine.vars.master_barrier_mut(slot);
                    mb.participants = participants;
                    mb.arrived += 1;
                    mb.direct_waiters.push(core);
                    if mb.arrived >= participants {
                        finish_master_barrier(engine, slot, var, &mut *out);
                    }
                } else if local_only {
                    let lb = engine.vars.local_barrier_mut(slot);
                    lb.waiters.push(core);
                    if lb.waiters.len() as u32 >= participants {
                        engine.st.release(Time::ZERO, var);
                        let lb = engine.vars.local_barrier_mut(slot);
                        for w in lb.waiters.drain(..) {
                            out.push(Outcome::Complete { core: w });
                        }
                        engine.vars.remove_local_barrier(slot);
                    }
                } else if participants == total_cores {
                    // Full-system barrier: hierarchical two-level communication.
                    let lb = engine.vars.local_barrier_mut(slot);
                    lb.waiters.push(core);
                    if lb.waiters.len() >= cores_per_unit {
                        lb.announced = true;
                        out.push(Outcome::Send {
                            to: master,
                            msg: EngineMsg::BarrierArriveGlobal {
                                from: unit,
                                var,
                                count: lb.waiters.len() as u32,
                                participants,
                            },
                            overflow: false,
                        });
                    }
                } else {
                    // Partial across-unit barrier: one-level communication, every
                    // arrival is forwarded to the Master SE as a direct request and
                    // the master responds to each core individually (Section 4.1.2).
                    // The local SE keeps *no* state for the variable: mixing local
                    // waiter queues with master-side direct waiters desynchronized
                    // barrier rounds once ST overflow redirected part of a unit — a
                    // direct-completed core could re-arrive and join the stale local
                    // queue while the previous round's departure was still in flight,
                    // deadlocking the remaining waiters. (deliver() skips ST
                    // allocation for these forwarded arrivals.)
                    out.push(Outcome::Send {
                        to: master,
                        msg: EngineMsg::CoreReq {
                            core,
                            req,
                            direct: true,
                            fallback: false,
                        },
                        overflow: false,
                    });
                }
            }
            SyncRequest::SemWait { initial, .. } => {
                if unit == master || direct {
                    let sem = engine.vars.master_sem_mut(slot);
                    if !sem.initialized {
                        sem.initialized = true;
                        sem.count = i64::from(initial);
                    }
                    if sem.count > 0 {
                        sem.count -= 1;
                        out.push(Outcome::Complete { core });
                    } else {
                        sem.waiters.push_back(core);
                    }
                } else {
                    out.push(Outcome::Send {
                        to: master,
                        msg: EngineMsg::CoreReq {
                            core,
                            req,
                            direct: true,
                            fallback: false,
                        },
                        overflow: false,
                    });
                }
            }
            SyncRequest::SemPost { .. } => {
                if unit == master || direct {
                    let sem = engine.vars.master_sem_mut(slot);
                    // Whichever operation touches the semaphore first initializes
                    // it: a post must mark it initialized so a later wait's
                    // `initial` cannot clobber banked posts (post-before-wait is
                    // how the open-loop deque workload stays deadlock-free).
                    sem.initialized = true;
                    if let Some(next) = sem.waiters.pop_front() {
                        out.push(Outcome::Complete { core: next });
                    } else {
                        sem.count += 1;
                    }
                } else {
                    out.push(Outcome::Send {
                        to: master,
                        msg: EngineMsg::CoreReq {
                            core,
                            req,
                            direct: true,
                            fallback: false,
                        },
                        overflow: false,
                    });
                }
            }
            SyncRequest::CondWait { var, lock } => {
                if unit == master || direct {
                    let mc = engine.vars.master_cond_mut(slot);
                    if coalescing && mc.pending > 0 {
                        // A banked signal wakes this waiter immediately: the atomic
                        // release-and-wait followed by the instant wake-and-reacquire
                        // collapses to the core simply keeping the associated lock.
                        mc.pending -= 1;
                        let pending = mc.pending;
                        engine.signals.record_consumed();
                        mirror_cond_state(engine, slot, var, Some(lock), pending);
                        out.push(Outcome::Complete { core });
                    } else {
                        mc.waiters.push_back((core, lock));
                        let pending = mc.pending;
                        mirror_cond_state(engine, slot, var, Some(lock), pending);
                        // cond_wait atomically releases the associated lock on behalf
                        // of the waiting core.
                        out.push(Outcome::Inject {
                            core,
                            req: SyncRequest::LockRelease { var: lock },
                        });
                    }
                } else {
                    out.push(Outcome::Send {
                        to: master,
                        msg: EngineMsg::CoreReq {
                            core,
                            req,
                            direct: true,
                            fallback: false,
                        },
                        overflow: false,
                    });
                }
            }
            SyncRequest::CondSignal { var } => {
                if unit == master || direct {
                    let streak_idx = core.flat_index(cores_per_unit);
                    let mc = engine.vars.master_cond_mut(slot);
                    if let Some((woken, lock)) = mc.waiters.pop_front() {
                        // The woken core re-acquires the lock; its cond_wait completes
                        // when the lock is granted to it.
                        engine.signals.record_delivered();
                        out.push(Outcome::Inject {
                            core: woken,
                            req: SyncRequest::LockAcquire { var: lock },
                        });
                        if coalescing {
                            engine.signal_streaks[streak_idx] = 0;
                            out.push(Outcome::Complete { core });
                        }
                    } else if coalescing {
                        if mc.pending < u64::from(pending_cap) {
                            // Bank the signal for the next cond_wait and ACK the
                            // signaler.
                            mc.pending += 1;
                            let pending = mc.pending;
                            // The cap is a u16, so the banked count always fits.
                            engine.signals.record_coalesced(pending as u16);
                            mirror_cond_state(engine, slot, var, None, pending);
                            engine.signal_streaks[streak_idx] = 0;
                            out.push(Outcome::Complete { core });
                        } else {
                            // Pending count at its cap: NACK the signaler with an
                            // exponentially growing backoff delay.
                            engine.signals.record_nacked();
                            let streak = engine.signal_streaks[streak_idx];
                            let delay = config.backoff_delay(streak);
                            engine.signal_streaks[streak_idx] = streak.saturating_add(1);
                            out.push(Outcome::Nack { core, delay });
                        }
                    }
                } else {
                    out.push(Outcome::Send {
                        to: master,
                        msg: EngineMsg::CoreReq {
                            core,
                            req,
                            direct: true,
                            fallback: false,
                        },
                        overflow: false,
                    });
                }
            }
            SyncRequest::CondBroadcast { .. } => {
                if unit == master || direct {
                    let mc = engine.vars.master_cond_mut(slot);
                    for (woken, lock) in mc.waiters.drain(..) {
                        out.push(Outcome::Inject {
                            core: woken,
                            req: SyncRequest::LockAcquire { var: lock },
                        });
                    }
                } else {
                    out.push(Outcome::Send {
                        to: master,
                        msg: EngineMsg::CoreReq {
                            core,
                            req,
                            direct: true,
                            fallback: false,
                        },
                        overflow: false,
                    });
                }
            }
        }
    }

    fn process_global(
        &mut self,
        unit: UnitId,
        slot: usize,
        master: UnitId,
        msg: EngineMsg,
        out: &mut Vec<Outcome>,
    ) {
        let engine = &mut self.engines[unit.index()];
        match msg {
            EngineMsg::LockAcquireGlobal { from, var } => {
                master_lock_acquire(engine, slot, var, Grantee::Unit(from), &mut *out);
            }
            EngineMsg::LockReleaseGlobal { from, var } => {
                master_lock_release(engine, slot, var, Grantee::Unit(from), &mut *out);
            }
            EngineMsg::LockGrantGlobal { var } => {
                let ll = engine.vars.local_lock_mut(slot);
                ll.has_ownership = true;
                ll.pending_global = false;
                ll.local_grants = 0;
                let (holder_none, has_waiters) = (ll.holder.is_none(), !ll.waiters.is_empty());
                if holder_none && has_waiters {
                    grant_local_lock(engine, slot, var, &mut *out);
                } else if holder_none {
                    // A grant with no local waiter left to serve (the waiters were
                    // redirected to the master while the request was in flight):
                    // hand the ownership straight back instead of stranding the lock
                    // on a unit that will never release it.
                    engine.vars.remove_local_lock(slot);
                    engine.st.release(Time::ZERO, var);
                    out.push(Outcome::Send {
                        to: master,
                        msg: EngineMsg::LockReleaseGlobal { from: unit, var },
                        overflow: false,
                    });
                }
            }
            EngineMsg::BarrierArriveGlobal {
                from,
                var,
                count,
                participants,
            } => {
                let mb = engine.vars.master_barrier_mut(slot);
                mb.participants = participants;
                mb.arrived += count;
                if !mb.arrived_units.contains(&from) {
                    mb.arrived_units.push(from);
                }
                if mb.arrived >= participants {
                    finish_master_barrier(engine, slot, var, &mut *out);
                }
            }
            EngineMsg::BarrierDepartGlobal { var } => {
                if engine.vars.local_barrier_ref(slot).is_some() {
                    engine.st.release(Time::ZERO, var);
                    let lb = engine.vars.local_barrier_mut(slot);
                    for w in lb.waiters.drain(..) {
                        out.push(Outcome::Complete { core: w });
                    }
                    engine.vars.remove_local_barrier(slot);
                }
            }
            EngineMsg::McsEnqueue { core, seq, var } => {
                mcs_master_enqueue(engine, slot, var, core, seq, &mut *out);
            }
            EngineMsg::McsLink {
                pred,
                pred_seq,
                succ,
                var,
            } => {
                debug_assert_eq!(pred.unit, unit, "MCS link delivered off the pred's engine");
                let nodes = engine.vars.mcs_nodes_mut(slot);
                if let Some(granted) = nodes.link(pred.core.index(), pred_seq, succ) {
                    // The predecessor had already released: the link completes the
                    // handoff to the successor directly.
                    out.push(Outcome::Complete { core: granted });
                    mcs_cleanup_nodes(engine, slot, var);
                }
            }
            EngineMsg::McsReleaseTail { core, seq, var } => {
                mcs_master_release_tail(engine, slot, var, core, seq, &mut *out);
            }
            EngineMsg::McsNodeFree { core, seq, var } => {
                debug_assert_eq!(
                    core.unit, unit,
                    "MCS node-free delivered off the waiter's engine"
                );
                let nodes = engine.vars.mcs_nodes_mut(slot);
                if nodes.reap(core.core.index(), seq) {
                    mcs_cleanup_nodes(engine, slot, var);
                }
            }
            EngineMsg::CoreReq { .. } => unreachable!("core requests use process_core_request"),
        }
    }

    fn apply_outcomes(
        &mut self,
        ctx: &mut dyn SyncContext,
        at: Time,
        unit: UnitId,
        outcomes: &mut Vec<Outcome>,
    ) {
        for outcome in outcomes.drain(..) {
            match outcome {
                Outcome::Complete { core } => self.complete_core(ctx, at, unit, core),
                Outcome::Nack { core, delay } => {
                    // The NACK reply travels now; the core stalls for the delay hint
                    // it carries before resuming.
                    self.complete_core(ctx, at + delay, unit, core)
                }
                Outcome::Send { to, msg, overflow } => {
                    self.send_engine_msg(ctx, at, unit, to, msg, overflow)
                }
                Outcome::Inject { core, req } => self.route_request(ctx, at, unit, core, req),
                Outcome::MisarAbortBroadcast => {
                    // Abort messages to every core of the unit, and matching
                    // acknowledgements once the cores switch to the fallback solution.
                    for _ in 0..self.config.cores_per_unit {
                        ctx.local_hop(unit, Self::local_bytes());
                        self.stats.local_messages += 1;
                    }
                }
                Outcome::MisarSwitchBack { core } => {
                    ctx.local_hop(core.unit, Self::local_bytes());
                    self.stats.local_messages += 1;
                }
            }
        }
    }

    /// Re-routes every lock waiter tracked in hardware for `var` to the MiSAR fallback
    /// server at `fallback_unit`, emulating the abort/retry of the software fallback
    /// (Section 6.7.3). Holders keep the lock; their releases are redirected by the
    /// sticky fallback set.
    fn misar_drain_lock_waiters(
        &mut self,
        ctx: &mut dyn SyncContext,
        at: Time,
        var: Addr,
        fallback_unit: UnitId,
    ) {
        let mut displaced: Vec<GlobalCoreId> = Vec::new();
        for engine in &mut self.engines {
            let Some(slot) = engine.vars.lookup(var) else {
                continue;
            };
            let slot = slot as usize;
            if engine.vars.local_lock(slot).is_some() {
                let ll = engine.vars.local_lock_mut(slot);
                displaced.extend(ll.waiters.drain(..));
                engine.vars.remove_local_lock(slot);
                engine.st.release(Time::ZERO, var);
            }
            if engine.vars.master_lock_ref(slot).is_some() {
                let ml = engine.vars.master_lock_mut(slot);
                for grantee in ml.waiting.drain(..) {
                    if let Grantee::Core(c) = grantee {
                        displaced.push(c);
                    }
                    // Unit-level waiters are covered by draining that unit's local
                    // waiter queue above.
                }
                engine.vars.remove_master_lock(slot);
                engine.st.release(Time::ZERO, var);
            }
            engine.vars.release_if_unused(slot as u32);
        }
        for core in displaced {
            self.send_engine_msg(
                ctx,
                at,
                core.unit,
                fallback_unit,
                EngineMsg::CoreReq {
                    core,
                    req: SyncRequest::LockAcquire { var },
                    direct: true,
                    fallback: true,
                },
                true,
            );
        }
    }

    /// Routes a request on behalf of `core` to the engine that serves it under the
    /// configured topology, charging the message hop from `origin` (the core's unit
    /// when the core itself issues the request, or the engine that generated an
    /// internal request on the core's behalf).
    fn route_request(
        &mut self,
        ctx: &mut dyn SyncContext,
        at: Time,
        origin: UnitId,
        core: GlobalCoreId,
        req: SyncRequest,
    ) {
        let (dest, direct) = match self.policy.topology(req.var()) {
            Topology::Hierarchical => (core.unit, false),
            Topology::Flat => (self.master_of(ctx, req.var()), true),
        };
        let msg = EngineMsg::CoreReq {
            core,
            req,
            direct,
            fallback: false,
        };
        if origin != dest {
            self.stats.global_messages += 1;
            ctx.send_remote(
                at,
                origin,
                dest,
                Self::global_bytes(),
                RemotePayload(PayloadKind::Msg { to: dest, msg }),
            );
            return;
        }
        self.schedule_msg(ctx, at, dest, msg);
    }
}

/// Mirrors the condition-variable state (associated lock, coalesced pending-signal
/// count) into wherever the engine keeps the variable: the ST entry buffering `var`
/// when one exists (Master SE with the SynCron backend), otherwise the in-memory
/// `syncronVar` image — which is where server-core backends and SynCron's overflow
/// path hold their state, using the packed `VarInfo` layout of
/// [`SyncronVar::set_cond_info`].
fn mirror_cond_state(
    engine: &mut Engine,
    slot: usize,
    var: Addr,
    lock: Option<Addr>,
    pending: u64,
) {
    // The component keeps a u64 (shared with the uncapped Ideal mechanism); the
    // protocol bounds it by its u16 pending-signal cap, so the mirror is lossless.
    let pending = pending as u16;
    if let Some(entry) = engine.st.lookup_mut(var) {
        if let TableInfo::CondLock {
            lock: entry_lock,
            pending_signals,
        } = &mut entry.info
        {
            if let Some(lock) = lock {
                *entry_lock = lock;
            }
            *pending_signals = pending;
        }
        return;
    }
    let (units, cores_per_unit) = (engine.units, engine.cores_per_unit);
    let image = engine
        .vars
        .syncron_var_entry(slot)
        .get_or_insert_with(|| Box::new(SyncronVar::with_geometry(var, units, cores_per_unit)));
    let lock = lock.unwrap_or_else(|| image.cond_lock());
    image.set_cond_info(lock, pending);
}

fn grant_local_lock(engine: &mut Engine, slot: usize, var: Addr, out: &mut Vec<Outcome>) {
    debug_assert!(engine.vars.local_lock(slot).is_some(), "local lock state");
    let ll = engine.vars.local_lock_mut(slot);
    if let Some(next) = ll.waiters.pop_front() {
        ll.holder = Some(next);
        ll.local_grants += 1;
        if let Some(e) = engine.st.lookup_mut(var) {
            e.local_waitlist.clear(next.core.index());
        }
        out.push(Outcome::Complete { core: next });
    }
}

fn master_lock_acquire(
    engine: &mut Engine,
    slot: usize,
    var: Addr,
    who: Grantee,
    out: &mut Vec<Outcome>,
) {
    let ml = engine.vars.master_lock_mut(slot);
    if ml.owner.is_none() {
        ml.owner = Some(who);
        match who {
            Grantee::Unit(u) => out.push(Outcome::Send {
                to: u,
                msg: EngineMsg::LockGrantGlobal { var },
                overflow: false,
            }),
            Grantee::Core(c) => out.push(Outcome::Complete { core: c }),
        }
    } else {
        ml.waiting.push_back(who);
        if let (Some(e), Grantee::Unit(u)) = (engine.st.lookup_mut(var), who) {
            e.global_waitlist.set(u.index());
        }
    }
}

fn master_lock_release(
    engine: &mut Engine,
    slot: usize,
    var: Addr,
    _who: Grantee,
    out: &mut Vec<Outcome>,
) {
    let ml = engine.vars.master_lock_mut(slot);
    ml.owner = None;
    if let Some(next) = ml.waiting.pop_front() {
        ml.owner = Some(next);
        if let (Some(e), Grantee::Unit(u)) = (engine.st.lookup_mut(var), next) {
            e.global_waitlist.clear(u.index());
        }
        match next {
            Grantee::Unit(u) => out.push(Outcome::Send {
                to: u,
                msg: EngineMsg::LockGrantGlobal { var },
                overflow: false,
            }),
            Grantee::Core(c) => out.push(Outcome::Complete { core: c }),
        }
    } else {
        engine.vars.remove_master_lock(slot);
        engine.st.release(Time::ZERO, var);
    }
}

fn finish_master_barrier(engine: &mut Engine, slot: usize, var: Addr, out: &mut Vec<Outcome>) {
    debug_assert!(
        engine.vars.master_barrier_ref(slot).is_some(),
        "barrier state"
    );
    engine.st.release(Time::ZERO, var);
    let mb = engine.vars.master_barrier_mut(slot);
    for u in mb.arrived_units.drain(..) {
        out.push(Outcome::Send {
            to: u,
            msg: EngineMsg::BarrierDepartGlobal { var },
            overflow: false,
        });
    }
    for c in mb.direct_waiters.drain(..) {
        out.push(Outcome::Complete { core: c });
    }
    engine.vars.remove_master_barrier(slot);
}

/// MCS master: swaps node instance `(core, seq)` into the tail pointer. A free
/// lock grants immediately; otherwise the previous tail's engine is told to
/// link the new waiter behind it.
fn mcs_master_enqueue(
    engine: &mut Engine,
    slot: usize,
    var: Addr,
    core: GlobalCoreId,
    seq: u32,
    out: &mut Vec<Outcome>,
) {
    let tail = engine.vars.mcs_tail_mut(slot);
    match tail.tail.replace((core, seq)) {
        None => out.push(Outcome::Complete { core }),
        Some((prev, prev_seq)) => out.push(Outcome::Send {
            to: prev.unit,
            msg: EngineMsg::McsLink {
                pred: prev,
                pred_seq: prev_seq,
                succ: core,
                var,
            },
            overflow: false,
        }),
    }
}

/// MCS master: a holder with no linked successor asks to swap the tail back to
/// free. Valid only while instance `(core, seq)` is still the tail — otherwise a
/// successor enqueued meanwhile and the in-flight link performs the handoff, so
/// the stale request is ignored.
fn mcs_master_release_tail(
    engine: &mut Engine,
    slot: usize,
    var: Addr,
    core: GlobalCoreId,
    seq: u32,
    out: &mut Vec<Outcome>,
) {
    let is_tail = engine
        .vars
        .mcs_tail_ref(slot)
        .is_some_and(|t| t.tail == Some((core, seq)));
    if is_tail {
        engine.vars.remove_mcs_tail(slot);
        engine.st.release(Time::ZERO, var);
        out.push(Outcome::Send {
            to: core.unit,
            msg: EngineMsg::McsNodeFree { core, seq, var },
            overflow: false,
        });
    }
}

/// Frees the waiter-side MCS node component (and its ST entry) once the last
/// node instance for `var` at this engine is gone.
fn mcs_cleanup_nodes(engine: &mut Engine, slot: usize, var: Addr) {
    if engine
        .vars
        .mcs_nodes_ref(slot)
        .is_some_and(|n| n.active == 0)
    {
        engine.vars.remove_mcs_nodes(slot);
        engine.st.release(Time::ZERO, var);
    }
}

impl SyncMechanism for ProtocolMechanism {
    fn name(&self) -> &'static str {
        self.config.kind.name()
    }

    fn blocks_core(&self, req: &SyncRequest) -> bool {
        // With signal coalescing every cond_signal is ACK/NACKed, so the signaling
        // core stalls until the (possibly backoff-delayed) reply arrives.
        req.is_blocking()
            || (self.config.signal_coalescing && matches!(req, SyncRequest::CondSignal { .. }))
    }

    fn request(&mut self, ctx: &mut dyn SyncContext, core: GlobalCoreId, req: SyncRequest) {
        self.stats.requests += 1;
        if req.is_acquire_type() {
            self.stats.acquire_requests += 1;
        }
        // The core's request always traverses its local crossbar to reach the network
        // interface of its unit.
        let now = ctx.now();
        let local = ctx.local_hop(core.unit, Self::local_bytes());
        self.stats.local_messages += 1;
        self.route_request(ctx, now + local, core.unit, core, req);
    }

    fn deliver(&mut self, ctx: &mut dyn SyncContext, token: u64) {
        // Slab slots are reused, so a token that resolves to a dead slot is no
        // longer a harmless stray — it means a message was double-delivered (and
        // its slot possibly already re-issued to an unrelated message). Fail
        // loudly instead of silently dropping or mis-routing it.
        let batch = match self.pending.get_mut(token as usize) {
            Some(batch) if batch.live => batch,
            _ => panic!(
                "protocol message token {token} delivered with no pending event: \
                 double delivery or a token scheduled outside schedule_msg"
            ),
        };
        batch.live = false;
        let unit = batch.unit;
        let first = batch.first;
        // Swap any merged follow-up messages into the reusable scratch buffer so
        // the mechanism can be borrowed mutably while walking them; the slot
        // gets the (empty) previous scratch vector back and returns to the free
        // list.
        debug_assert!(self.batch_scratch.is_empty());
        std::mem::swap(&mut self.batch_scratch, &mut batch.rest);
        self.pending_free.push(token as u32);
        // The open batch must be closed *before* processing: a message scheduled
        // during processing could otherwise append to this already-delivered
        // token and be lost.
        if self
            .open_batch
            .is_some_and(|open| open.token == token as u32)
        {
            self.open_batch = None;
        }
        // Batched messages were scheduled back to back for the same timestamp,
        // so walking them here is exactly the pop order the unbatched queue
        // would have produced (`EngineMsg` is `Copy`; indexing sidesteps the
        // borrow of `self`).
        if self.config.column_batching {
            // Column-wise walk: a run of consecutive members addressing the
            // same variable keeps that variable's slot resolved across the run
            // instead of paying a `release_if_unused` + `resolve` round-trip
            // per member. The skipped pair is a state no-op — releasing an
            // unused slot and immediately re-resolving the same variable pops
            // the identical slot back off the LIFO free list — so every report
            // stays bit-identical to the member-at-a-time walk. On a variable
            // change the finished run is released *before* the new variable is
            // resolved, which is the exact interleaving the unbatched walk
            // produces and what keeps LIFO slot reuse identical. Redirect
            // paths consume the slot themselves (`deliver_one_slot` returns
            // false) and drop the memo.
            let mut run: Option<(Addr, u32)> = None;
            for i in 0..=self.batch_scratch.len() {
                let msg = if i == 0 {
                    first
                } else {
                    self.batch_scratch[i - 1]
                };
                let var = msg.var();
                let slot = match run {
                    Some((open_var, slot)) if open_var == var => slot,
                    other => {
                        if let Some((_, finished)) = other {
                            self.engines[unit.index()].vars.release_if_unused(finished);
                        }
                        self.engines[unit.index()].vars.resolve(var)
                    }
                };
                run = self
                    .deliver_one_slot(ctx, unit, msg, slot as usize)
                    .then_some((var, slot));
            }
            if let Some((_, finished)) = run {
                self.engines[unit.index()].vars.release_if_unused(finished);
            }
        } else {
            self.deliver_one(ctx, unit, first);
            for i in 0..self.batch_scratch.len() {
                let msg = self.batch_scratch[i];
                self.deliver_one(ctx, unit, msg);
            }
        }
        self.batch_scratch.clear();
    }

    fn deliver_remote(&mut self, ctx: &mut dyn SyncContext, payload: RemotePayload) {
        // Running at the arrival time on the destination unit's shard: the
        // send-side legs (source crossbar, inter-unit link) and the message
        // statistics were charged by `send_remote`'s caller; only the
        // receive-side crossbar hop remains.
        match payload.0 {
            PayloadKind::Msg { to, msg } => {
                let at = ctx.now() + ctx.recv_hop(to, Self::global_bytes());
                self.schedule_msg(ctx, at, to, msg);
            }
            PayloadKind::Complete { core } => {
                let t = ctx.now()
                    + ctx.recv_hop(core.unit, Self::global_bytes())
                    + ctx.local_hop(core.unit, Self::local_bytes());
                self.stats.local_messages += 1;
                self.stats.completions += 1;
                ctx.complete(core, t);
            }
        }
    }

    fn st_unit_occupancy(&self, end: Time, unit: usize) -> Option<(f64, f64)> {
        if self.config.backend != EngineBackend::SyncronSe {
            return None;
        }
        let e = self.engines.get(unit)?;
        Some((e.st.avg_occupancy(end), e.st.max_occupancy()))
    }

    fn stats(&self, end: Time) -> SyncMechanismStats {
        let mut stats = self.stats;
        for e in &self.engines {
            stats.delivered_signals += e.signals.delivered();
            stats.coalesced_signals += e.signals.coalesced();
            stats.consumed_signals += e.signals.consumed();
            stats.signal_nacks += e.signals.nacked();
            stats.max_pending_signals = stats
                .max_pending_signals
                .max(u64::from(e.signals.max_pending()));
        }
        if self.config.backend == EngineBackend::SyncronSe && !self.engines.is_empty() {
            let mut max = 0.0f64;
            let mut avg_sum = 0.0f64;
            for e in &self.engines {
                max = max.max(e.st.max_occupancy());
                avg_sum += e.st.avg_occupancy(end);
            }
            stats.st_max_occupancy = max;
            stats.st_avg_occupancy = avg_sum / self.engines.len() as f64;
        }
        stats
    }
}

impl ProtocolMechanism {
    /// Processes one message at engine `unit` at the current time.
    fn deliver_one(&mut self, ctx: &mut dyn SyncContext, unit: UnitId, msg: EngineMsg) {
        // The one compact `addr -> slot` resolution of this message; every
        // subsequent component-table touch indexes the columns densely.
        let slot = self.engines[unit.index()].vars.resolve(msg.var());
        if self.deliver_one_slot(ctx, unit, msg, slot as usize) {
            // Recycle the slot if this message left the variable with no state
            // at this engine (forward-only hops, completed barriers, released
            // locks).
            self.engines[unit.index()].vars.release_if_unused(slot);
        }
    }

    /// Processes one message whose variable is already resolved to `slot`.
    ///
    /// Returns `true` when the caller still owes the trailing
    /// `release_if_unused(slot)` (the normal path) and `false` when the
    /// message consumed the slot itself (redirect paths) — a column-batch run
    /// keyed on this slot must end there.
    fn deliver_one_slot(
        &mut self,
        ctx: &mut dyn SyncContext,
        unit: UnitId,
        msg: EngineMsg,
        slot: usize,
    ) -> bool {
        let now = ctx.now();
        let var = msg.var();
        let kind = msg.primitive();

        // Resolve ST / overflow state (SynCron backends only).
        let (mut use_memory, redirect) = match msg {
            EngineMsg::CoreReq {
                req,
                direct,
                fallback,
                ..
            } => {
                if fallback {
                    (false, false)
                } else if !direct && self.is_partial_barrier_forward(ctx, unit, &req) {
                    // Partial across-unit barrier arriving at a non-master SE: the
                    // request is forwarded to the Master SE untouched (one-level
                    // communication), so the local SE neither buffers the variable
                    // in its ST nor updates its indexing counters — allocating an
                    // entry per arrival only to drop it again would churn the
                    // occupancy/allocation statistics of Table 7.
                    (false, false)
                } else {
                    let counter_action = if req.is_acquire_type() { 1 } else { -1 };
                    // Redirected (direct) requests were already counted by the SE that
                    // first overflowed.
                    let count_stat = req.is_acquire_type()
                        && !(direct && self.policy.topology(var) == Topology::Hierarchical);
                    let (mem, redir) =
                        self.st_resolve(ctx, now, unit, var, kind, counter_action, count_stat);
                    // Direct requests reaching the master during overflow are serviced
                    // via memory rather than redirected again. MCS lock requests are
                    // never redirected either: the queue nodes are bound to the
                    // requester's engine, so an overflowed variable spills its node
                    // state to memory in place instead of moving the queue.
                    let queue_bound = kind == PrimitiveKind::Lock
                        && self.policy.lock_variant() == LockVariant::McsQueue;
                    if redir && (direct || queue_bound) {
                        (true, false)
                    } else {
                        (mem, redir)
                    }
                }
            }
            _ => {
                let (mem, _) = self.st_resolve(ctx, now, unit, var, kind, 0, false);
                (mem, false)
            }
        };

        if redirect {
            // The engine could not track the variable: hand the request over.
            if let EngineMsg::CoreReq { core, req, .. } = msg {
                match self.config.overflow_mode {
                    OverflowMode::Integrated => {
                        let master = self.master_of(ctx, var);
                        self.send_engine_msg(
                            ctx,
                            now,
                            unit,
                            master,
                            EngineMsg::CoreReq {
                                core,
                                req,
                                direct: true,
                                fallback: false,
                            },
                            true,
                        );
                    }
                    OverflowMode::MiSarCentral | OverflowMode::MiSarDistributed => {
                        let fallback_unit = match self.config.overflow_mode {
                            OverflowMode::MiSarCentral => UnitId(0),
                            _ => ctx.home_unit(var),
                        };
                        let first = self.engines[unit.index()].vars.claim_misar_abort(slot);
                        let mut outcomes = Vec::new();
                        if first {
                            outcomes.push(Outcome::MisarAbortBroadcast);
                        }
                        outcomes.push(Outcome::MisarSwitchBack { core });
                        self.apply_outcomes(ctx, now, unit, &mut outcomes);
                        // The abort notification reaches the core, which switches to
                        // the software fallback and re-issues the request from there.
                        let abort_delivery = ctx.local_hop(unit, Self::local_bytes());
                        self.stats.local_messages += 1;
                        let switch_overhead = Freq::ghz(2.5).cycles_to_ps(100);
                        let retry_at = now + abort_delivery + switch_overhead;
                        if first {
                            // The aborted cores retry through the fallback server:
                            // every waiter queued in hardware for this variable is
                            // re-routed so that no grant is lost during the switch.
                            self.misar_drain_lock_waiters(ctx, retry_at, var, fallback_unit);
                        }
                        self.send_engine_msg(
                            ctx,
                            retry_at,
                            unit,
                            fallback_unit,
                            EngineMsg::CoreReq {
                                core,
                                req,
                                direct: true,
                                fallback: true,
                            },
                            true,
                        );
                    }
                }
                // Redirected requests leave no state here (the MiSAR abort flag,
                // when set, pins the slot); recycle it otherwise. The MiSAR
                // drain above may also have released slots across engines, so
                // the slot handed in is dead either way.
                self.engines[unit.index()]
                    .vars
                    .release_if_unused(slot as u32);
                return false;
            }
            // Global messages are never redirected; fall through and service via memory.
            use_memory = true;
        }

        let fallback = matches!(msg, EngineMsg::CoreReq { fallback: true, .. });
        let service = self.service_time(ctx, unit, var, use_memory, fallback);
        let start = self.engines[unit.index()].busy.acquire(now, service);
        let done = start + service;

        let mut outcomes = std::mem::take(&mut self.outcome_scratch);
        debug_assert!(outcomes.is_empty());
        match msg {
            EngineMsg::CoreReq {
                core, req, direct, ..
            } => self.process_core_request(
                unit,
                slot,
                ctx,
                core,
                req,
                direct || fallback,
                &mut outcomes,
            ),
            other => {
                let master = self.master_of(ctx, var);
                self.process_global(unit, slot, master, other, &mut outcomes)
            }
        }
        self.apply_outcomes(ctx, done, unit, &mut outcomes);
        outcomes.clear();
        self.outcome_scratch = outcomes;
        // Adaptive policies watch master-side lock contention: the global
        // waiting-queue depth after this message is the signal. Only lock
        // traffic feeds the probe (the depth is 0 off the master, where the
        // component is absent), so barrier rounds never see their topology
        // change mid-round.
        if kind == PrimitiveKind::Lock && self.policy.observes_contention() {
            let depth = self.engines[unit.index()].vars.master_lock_depth(slot);
            self.policy.observe_contention(var, depth);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{build_mechanism, MechanismParams};
    use syncron_sim::event::EventQueue;
    use syncron_sim::{CoreId, UnitId};

    /// A miniature NDP system used to drive mechanisms in isolation: fixed hop and
    /// memory latencies, FIFO event delivery, and a record of completions.
    struct Harness {
        mech: Box<dyn SyncMechanism>,
        ctx: HarnessCtx,
    }

    struct HarnessCtx {
        now: Time,
        queue: EventQueue<u64>,
        /// Remote payloads in flight, delivered interleaved with the token
        /// queue in arrival-time order (the machine's sharded mailboxes,
        /// collapsed to one queue).
        inbox: EventQueue<RemotePayload>,
        completed: Vec<(GlobalCoreId, Time)>,
        local_hops: u64,
        remote_hops: u64,
        mem_accesses: u64,
    }

    impl SyncContext for HarnessCtx {
        fn now(&self) -> Time {
            self.now
        }
        fn schedule(&mut self, at: Time, _unit: UnitId, token: u64) {
            self.queue.push(at, token);
        }
        fn schedule_stamp(&self) -> Option<u64> {
            // The harness pushes nothing but mechanism tokens, so the queue's
            // push count is the system-wide count: batching is active in these
            // tests exactly as it is under the full machine.
            Some(self.queue.scheduled_total())
        }
        fn local_hop(&mut self, _unit: UnitId, _bytes: u64) -> Time {
            self.local_hops += 1;
            Time::from_ns(2)
        }
        fn send_remote(&mut self, at: Time, _f: UnitId, _t: UnitId, _bytes: u64, p: RemotePayload) {
            // One flat 40 ns for the whole remote journey, charged at the send
            // side; `recv_hop` is free so end-to-end latencies match the old
            // single-call hop model these tests were written against.
            self.remote_hops += 1;
            self.inbox.push(at + Time::from_ns(40), p);
        }
        fn recv_hop(&mut self, _unit: UnitId, _bytes: u64) -> Time {
            Time::ZERO
        }
        fn sync_mem_access(&mut self, _u: UnitId, _a: Addr, _w: bool, _c: bool) -> Time {
            self.mem_accesses += 1;
            Time::from_ns(20)
        }
        fn home_unit(&self, addr: Addr) -> UnitId {
            UnitId(((addr.value() >> 22) % 4) as u8)
        }
        fn complete(&mut self, core: GlobalCoreId, at: Time) {
            self.completed.push((core, at));
        }
        fn units(&self) -> usize {
            4
        }
        fn cores_per_unit(&self) -> usize {
            16
        }
    }

    impl HarnessCtx {
        /// Delivers the earliest pending item (scheduled token or in-flight
        /// remote payload); returns `false` when both queues are empty.
        fn drive(&mut self, mech: &mut dyn SyncMechanism) -> bool {
            let token_at = self.queue.peek_time();
            let remote_at = self.inbox.peek_time();
            match (token_at, remote_at) {
                (None, None) => false,
                (Some(t), r) if r.is_none_or(|r| t <= r) => {
                    let (at, token) = self.queue.pop().unwrap();
                    self.now = self.now.max(at);
                    mech.deliver(self, token);
                    true
                }
                _ => {
                    let (at, payload) = self.inbox.pop().unwrap();
                    self.now = self.now.max(at);
                    mech.deliver_remote(self, payload);
                    true
                }
            }
        }
    }

    impl Harness {
        fn new(kind: MechanismKind) -> Self {
            Harness::with_params(MechanismParams::new(kind))
        }

        fn with_params(params: MechanismParams) -> Self {
            Harness {
                mech: build_mechanism(&params, 4, 16),
                ctx: bare_ctx(),
            }
        }

        fn request(&mut self, core: GlobalCoreId, req: SyncRequest) {
            self.mech.request(&mut self.ctx, core, req);
            self.drain();
        }

        fn drain(&mut self) {
            while self.ctx.drive(self.mech.as_mut()) {}
        }

        fn completed(&self) -> &[(GlobalCoreId, Time)] {
            &self.ctx.completed
        }
    }

    fn core(u: u8, c: u8) -> GlobalCoreId {
        GlobalCoreId::new(UnitId(u), CoreId(c))
    }

    fn lock_var() -> Addr {
        // Homed in unit 1 for the harness's home_unit function.
        Addr(1 << 22)
    }

    fn exercise_lock_mutual_exclusion(kind: MechanismKind) {
        let mut h = Harness::new(kind);
        let var = lock_var();
        let cores = [core(0, 0), core(0, 1), core(1, 0), core(2, 5), core(3, 2)];
        for &c in &cores {
            h.request(c, SyncRequest::LockAcquire { var });
        }
        // Exactly one acquisition is granted before any release.
        assert_eq!(h.completed().len(), 1, "{kind:?}");
        let mut held = h.completed()[0].0;
        let mut order = vec![held];
        for _ in 0..cores.len() - 1 {
            h.request(held, SyncRequest::LockRelease { var });
            let newly = h
                .completed()
                .last()
                .copied()
                .expect("a grant follows a release");
            assert_ne!(newly.0, held, "{kind:?}: release granted back to holder");
            held = newly.0;
            order.push(held);
        }
        h.request(held, SyncRequest::LockRelease { var });
        // Every core acquired the lock exactly once.
        let mut sorted: Vec<_> = order.iter().map(|c| c.flat_index(16)).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            cores.len(),
            "{kind:?}: duplicate grants {order:?}"
        );
    }

    #[test]
    fn lock_mutual_exclusion_all_mechanisms() {
        for kind in [
            MechanismKind::Central,
            MechanismKind::Hier,
            MechanismKind::SynCron,
            MechanismKind::SynCronFlat,
        ] {
            exercise_lock_mutual_exclusion(kind);
        }
    }

    #[test]
    fn syncron_prefers_local_grants() {
        // Two cores of unit 1 (the variable's home) and one core of unit 3 compete.
        // After the first local release, the lock should be handed to the other local
        // waiter before leaving the unit.
        let mut h = Harness::new(MechanismKind::SynCron);
        let var = lock_var();
        h.request(core(1, 0), SyncRequest::LockAcquire { var });
        h.request(core(1, 1), SyncRequest::LockAcquire { var });
        h.request(core(3, 0), SyncRequest::LockAcquire { var });
        assert_eq!(h.completed().len(), 1);
        assert_eq!(h.completed()[0].0, core(1, 0));
        h.request(core(1, 0), SyncRequest::LockRelease { var });
        assert_eq!(h.completed()[1].0, core(1, 1), "local waiter served first");
        h.request(core(1, 1), SyncRequest::LockRelease { var });
        assert_eq!(h.completed()[2].0, core(3, 0));
        h.request(core(3, 0), SyncRequest::LockRelease { var });
    }

    #[test]
    fn fairness_threshold_hands_lock_to_other_unit() {
        let params = MechanismParams::new(MechanismKind::SynCron).with_fairness_threshold(1);
        let mut h = Harness::with_params(params);
        let var = lock_var();
        h.request(core(1, 0), SyncRequest::LockAcquire { var });
        h.request(core(1, 1), SyncRequest::LockAcquire { var });
        h.request(core(3, 0), SyncRequest::LockAcquire { var });
        assert_eq!(h.completed()[0].0, core(1, 0));
        // Threshold of 1 consecutive local grant: on release the lock must go to the
        // waiting remote unit even though a local waiter exists.
        h.request(core(1, 0), SyncRequest::LockRelease { var });
        assert_eq!(
            h.completed()[1].0,
            core(3, 0),
            "fairness hand-off to unit 3"
        );
        h.request(core(3, 0), SyncRequest::LockRelease { var });
        assert_eq!(h.completed()[2].0, core(1, 1));
        h.request(core(1, 1), SyncRequest::LockRelease { var });
    }

    #[test]
    fn full_system_barrier_releases_everyone() {
        for kind in [
            MechanismKind::Central,
            MechanismKind::Hier,
            MechanismKind::SynCron,
            MechanismKind::SynCronFlat,
        ] {
            let mut h = Harness::new(kind);
            let var = Addr(2 << 22);
            let total = 64u32;
            for u in 0..4u8 {
                for c in 0..16u8 {
                    h.request(
                        core(u, c),
                        SyncRequest::BarrierWait {
                            var,
                            participants: total,
                            scope: BarrierScope::AcrossUnits,
                        },
                    );
                }
            }
            assert_eq!(h.completed().len(), 64, "{kind:?}");
        }
    }

    #[test]
    fn partial_barrier_uses_one_level_and_completes() {
        let mut h = Harness::new(MechanismKind::SynCron);
        let var = Addr(2 << 22);
        // 6 participants spread over 3 units (fewer than the 64 total cores).
        let participants = [
            core(0, 0),
            core(0, 1),
            core(1, 0),
            core(1, 1),
            core(2, 0),
            core(2, 1),
        ];
        for &c in &participants {
            h.request(
                c,
                SyncRequest::BarrierWait {
                    var,
                    participants: participants.len() as u32,
                    scope: BarrierScope::AcrossUnits,
                },
            );
        }
        assert_eq!(h.completed().len(), participants.len());
    }

    #[test]
    fn within_unit_barrier_stays_local() {
        let mut h = Harness::new(MechanismKind::SynCron);
        let var = Addr(3 << 22);
        for c in 0..8u8 {
            h.request(
                core(2, c),
                SyncRequest::BarrierWait {
                    var,
                    participants: 8,
                    scope: BarrierScope::WithinUnit,
                },
            );
        }
        assert_eq!(h.completed().len(), 8);
        // A within-unit barrier at unit 2 for a variable homed at unit 1 never needs a
        // remote hop under SynCron.
        assert_eq!(h.ctx.remote_hops, 0);
    }

    #[test]
    fn semaphore_grants_match_resources() {
        for kind in [
            MechanismKind::Central,
            MechanismKind::Hier,
            MechanismKind::SynCron,
        ] {
            let mut h = Harness::new(kind);
            let var = Addr(1 << 22);
            for c in 0..4u8 {
                h.request(core(0, c), SyncRequest::SemWait { var, initial: 2 });
            }
            assert_eq!(h.completed().len(), 2, "{kind:?}");
            h.request(core(0, 0), SyncRequest::SemPost { var });
            h.request(core(0, 1), SyncRequest::SemPost { var });
            assert_eq!(h.completed().len(), 4, "{kind:?}");
        }
    }

    #[test]
    fn posts_before_the_first_wait_are_banked_not_clobbered() {
        // Post-before-wait is the deadlock-freedom invariant of the open-loop
        // deque workload: the first post initializes the semaphore, so the first
        // wait's `initial` must not reset the banked count.
        for kind in [
            MechanismKind::Central,
            MechanismKind::Hier,
            MechanismKind::SynCron,
        ] {
            let mut h = Harness::new(kind);
            let var = Addr(1 << 22);
            h.request(core(0, 0), SyncRequest::SemPost { var });
            h.request(core(0, 1), SyncRequest::SemPost { var });
            h.request(core(0, 0), SyncRequest::SemWait { var, initial: 0 });
            h.request(core(0, 1), SyncRequest::SemWait { var, initial: 0 });
            // Both waits consume the banked posts and complete immediately.
            assert_eq!(h.completed().len(), 2, "{kind:?}");
        }
    }

    #[test]
    fn condvar_signal_and_broadcast() {
        let mut h = Harness::new(MechanismKind::SynCron);
        let cond = Addr(1 << 22);
        let lock = Addr((1 << 22) + 64);
        let signaler = core(1, 0);
        for c in 0..3u8 {
            h.request(core(0, c), SyncRequest::LockAcquire { var: lock });
            h.request(core(0, c), SyncRequest::CondWait { var: cond, lock });
        }
        // Three lock acquisitions completed; the cond_waits have not.
        assert_eq!(h.completed().len(), 3);
        h.request(signaler, SyncRequest::CondSignal { var: cond });
        // One waiter woken and re-acquired the lock, plus the signaler's ACK
        // (signal coalescing is on by default).
        assert_eq!(h.completed().len(), 5);
        let woken = h.completed()[3..]
            .iter()
            .map(|(c, _)| *c)
            .find(|c| *c != signaler)
            .expect("a waiter was woken");
        h.request(woken, SyncRequest::LockRelease { var: lock });
        h.request(signaler, SyncRequest::CondBroadcast { var: cond });
        // Remaining two waiters wake; they serialize on the lock.
        let done: Vec<_> = h.completed().iter().map(|(c, _)| *c).collect();
        assert!(done.len() >= 6, "{done:?}");
    }

    #[test]
    fn coalesced_signal_is_consumed_by_a_later_wait_exactly_once() {
        for kind in [
            MechanismKind::Central,
            MechanismKind::Hier,
            MechanismKind::SynCron,
            MechanismKind::SynCronFlat,
        ] {
            let mut h = Harness::new(kind);
            let cond = Addr(1 << 22);
            let lock = Addr((1 << 22) + 64);
            let signaler = core(2, 0);

            // A signal with no queued waiter is banked (pending = 1), and the
            // signaler is ACKed instead of left to re-signal forever.
            h.request(signaler, SyncRequest::CondSignal { var: cond });
            assert_eq!(h.completed().len(), 1, "{kind:?}: signaler ACK");
            assert_eq!(h.completed()[0].0, signaler);

            // With the default pending cap of 1, a second wasted signal is NACKed
            // (it still completes the signaler, after the backoff delay).
            h.request(signaler, SyncRequest::CondSignal { var: cond });
            assert_eq!(h.completed().len(), 2, "{kind:?}: signaler NACK");
            let stats = h.mech.stats(h.ctx.now);
            assert_eq!(stats.coalesced_signals, 1, "{kind:?}");
            assert_eq!(stats.signal_nacks, 1, "{kind:?}");
            assert_eq!(stats.consumed_signals, 0, "{kind:?}");

            // The first cond_wait consumes the banked signal exactly once: it
            // completes immediately, keeping the associated lock.
            h.request(core(0, 0), SyncRequest::LockAcquire { var: lock });
            h.request(core(0, 0), SyncRequest::CondWait { var: cond, lock });
            assert_eq!(h.completed().len(), 4, "{kind:?}: wait consumed the signal");
            assert_eq!(h.mech.stats(h.ctx.now).consumed_signals, 1, "{kind:?}");
            h.request(core(0, 0), SyncRequest::LockRelease { var: lock });

            // The second cond_wait finds nothing banked and blocks.
            h.request(core(0, 1), SyncRequest::LockAcquire { var: lock });
            let before = h.completed().len();
            h.request(core(0, 1), SyncRequest::CondWait { var: cond, lock });
            assert_eq!(
                h.completed().len(),
                before,
                "{kind:?}: second wait must block (signal consumed exactly once)"
            );

            // A fresh signal is delivered to the queued waiter, not banked.
            h.request(signaler, SyncRequest::CondSignal { var: cond });
            let done: Vec<_> = h.completed().iter().map(|(c, _)| *c).collect();
            assert!(
                done.contains(&core(0, 1)),
                "{kind:?}: waiter woken {done:?}"
            );
            let stats = h.mech.stats(h.ctx.now);
            assert_eq!(
                stats.coalesced_signals, 1,
                "{kind:?}: delivery is not banked"
            );
            assert_eq!(stats.consumed_signals, 1, "{kind:?}");
        }
    }

    #[test]
    fn nack_backoff_grows_exponentially_and_resets_on_acceptance() {
        let mut h = Harness::new(MechanismKind::Central);
        let cond = Addr(1 << 22);
        let lock = Addr((1 << 22) + 64);
        let signaler = core(0, 0);

        // First signal banks (pending cap = 1); the rest are NACKed with doubling
        // delays.
        h.request(signaler, SyncRequest::CondSignal { var: cond });
        let mut deltas = Vec::new();
        for _ in 0..4 {
            let before = h.ctx.now;
            h.request(signaler, SyncRequest::CondSignal { var: cond });
            let at = h.completed().last().unwrap().1;
            deltas.push(at.saturating_sub(before));
        }
        for pair in deltas.windows(2) {
            assert!(
                pair[1] > pair[0],
                "backoff must grow: {:?} then {:?}",
                pair[0],
                pair[1]
            );
        }

        // Consume the banked signal, then bank a fresh one: the acceptance resets
        // the signaler's streak, so the next NACK is fast again.
        h.request(core(0, 1), SyncRequest::LockAcquire { var: lock });
        h.request(core(0, 1), SyncRequest::CondWait { var: cond, lock });
        h.request(core(0, 1), SyncRequest::LockRelease { var: lock });
        h.request(signaler, SyncRequest::CondSignal { var: cond }); // banked: ACK, reset
        let before = h.ctx.now;
        h.request(signaler, SyncRequest::CondSignal { var: cond }); // NACK, streak 0
        let after_reset = h.completed().last().unwrap().1.saturating_sub(before);
        assert!(
            after_reset < *deltas.last().unwrap(),
            "reset streak must shrink the delay: {after_reset:?} vs {:?}",
            deltas.last().unwrap()
        );
    }

    #[test]
    fn pending_signal_cap_bounds_banked_signals() {
        let params = MechanismParams::new(MechanismKind::SynCron);
        let mut h = Harness::with_params(params);
        // Raise the cap directly on the protocol config through a fresh mechanism.
        let config =
            ProtocolConfig::for_kind(MechanismKind::SynCron, 4, 16).with_pending_signal_cap(3);
        h.mech = Box::new(ProtocolMechanism::new(config));
        let cond = Addr(1 << 22);
        for _ in 0..5 {
            h.request(core(1, 0), SyncRequest::CondSignal { var: cond });
        }
        let stats = h.mech.stats(h.ctx.now);
        assert_eq!(stats.coalesced_signals, 3, "cap bounds the banked signals");
        assert_eq!(stats.signal_nacks, 2);
    }

    #[test]
    fn server_backend_mirrors_cond_state_into_memory_image() {
        // Central keeps synchronization state in memory: the banked pending count and
        // associated lock must land in the engine's in-memory syncronVar image using
        // the packed VarInfo layout.
        let mut mech =
            ProtocolMechanism::new(ProtocolConfig::for_kind(MechanismKind::Central, 4, 16));
        let mut ctx = bare_ctx();
        let cond = Addr(1 << 22);
        let lock = Addr((1 << 22) + 64);
        let drain = drain_ctx;
        mech.request(&mut ctx, core(1, 0), SyncRequest::CondSignal { var: cond });
        drain(&mut mech, &mut ctx);
        // Central serves everything at unit 0.
        let image = mech.engines[0]
            .vars
            .syncron_var(cond)
            .expect("in-memory syncronVar image");
        assert_eq!(image.cond_pending_signals(), 1);
        mech.request(&mut ctx, core(0, 0), SyncRequest::LockAcquire { var: lock });
        drain(&mut mech, &mut ctx);
        mech.request(
            &mut ctx,
            core(0, 0),
            SyncRequest::CondWait { var: cond, lock },
        );
        drain(&mut mech, &mut ctx);
        let image = mech.engines[0].vars.syncron_var(cond).unwrap();
        assert_eq!(image.cond_pending_signals(), 0, "consumed exactly once");
        assert_eq!(image.cond_lock(), lock, "wait recorded the associated lock");
        // The SynCron backend buffers the variable in its ST instead: no image.
        let mut se =
            ProtocolMechanism::new(ProtocolConfig::for_kind(MechanismKind::SynCron, 4, 16));
        se.request(&mut ctx, core(1, 0), SyncRequest::CondSignal { var: cond });
        drain(&mut se, &mut ctx);
        let master = 1; // cond is homed at unit 1 under the harness home_unit
        assert!(se.engines[master].vars.syncron_var(cond).is_none());
        assert!(matches!(
            se.engines[master].st.lookup(cond).unwrap().info,
            TableInfo::CondLock {
                pending_signals: 1,
                ..
            }
        ));
    }

    #[test]
    fn coalescing_off_preserves_fire_and_forget_signals() {
        let params = MechanismParams::new(MechanismKind::SynCron).with_signal_coalescing(false);
        let mut h = Harness::with_params(params);
        let cond = Addr(1 << 22);
        let req = SyncRequest::CondSignal { var: cond };
        assert!(
            !h.mech.blocks_core(&req),
            "without coalescing a signal stays req_async"
        );
        h.request(core(0, 0), req);
        assert!(h.completed().is_empty(), "no ACK, the signal is dropped");
        let stats = h.mech.stats(h.ctx.now);
        assert_eq!(stats.coalesced_signals, 0);
        assert_eq!(stats.signal_nacks, 0);
    }

    #[test]
    fn coalescing_makes_signals_blocking_by_default() {
        let h = Harness::new(MechanismKind::Central);
        let var = lock_var();
        assert!(h.mech.blocks_core(&SyncRequest::CondSignal { var }));
        assert!(!h.mech.blocks_core(&SyncRequest::CondBroadcast { var }));
        assert!(!h.mech.blocks_core(&SyncRequest::LockRelease { var }));
        assert!(h.mech.blocks_core(&SyncRequest::LockAcquire { var }));
    }

    #[test]
    fn syncron_uses_fewer_remote_hops_than_flat_under_contention() {
        let var = lock_var();
        let run = |kind: MechanismKind| {
            let mut h = Harness::new(kind);
            // All 8 cores of unit 0 (remote to the variable's home unit 1) contend.
            for c in 0..8u8 {
                h.request(core(0, c), SyncRequest::LockAcquire { var });
            }
            let mut holder = h.completed()[0].0;
            for _ in 0..7 {
                h.request(holder, SyncRequest::LockRelease { var });
                holder = h.completed().last().unwrap().0;
            }
            h.request(holder, SyncRequest::LockRelease { var });
            h.ctx.remote_hops
        };
        let hier = run(MechanismKind::SynCron);
        let flat = run(MechanismKind::SynCronFlat);
        assert!(
            hier < flat,
            "hierarchical SynCron ({hier} remote hops) must beat flat ({flat})"
        );
    }

    #[test]
    fn syncron_avoids_memory_accesses_without_overflow() {
        let mut h = Harness::new(MechanismKind::SynCron);
        let var = lock_var();
        for c in 0..4u8 {
            h.request(core(0, c), SyncRequest::LockAcquire { var });
        }
        let mut holder = h.completed()[0].0;
        for _ in 0..3 {
            h.request(holder, SyncRequest::LockRelease { var });
            holder = h.completed().last().unwrap().0;
        }
        h.request(holder, SyncRequest::LockRelease { var });
        assert_eq!(h.ctx.mem_accesses, 0, "ST buffering must avoid memory");
        // Hier, in contrast, accesses memory for every message.
        let mut hh = Harness::new(MechanismKind::Hier);
        hh.request(core(0, 0), SyncRequest::LockAcquire { var });
        hh.request(core(0, 0), SyncRequest::LockRelease { var });
        assert!(hh.ctx.mem_accesses > 0);
    }

    #[test]
    fn st_overflow_integrated_still_correct() {
        // A 2-entry ST with many distinct locks: most allocations overflow, requests
        // are redirected to the Master SE and serviced via memory, but mutual exclusion
        // and completion still hold.
        let params = MechanismParams::new(MechanismKind::SynCron).with_st_entries(2);
        let mut h = Harness::with_params(params);
        let locks: Vec<Addr> = (0..16).map(|i| Addr((1 << 22) + i * 64)).collect();
        for (i, &var) in locks.iter().enumerate() {
            let c = core((i % 4) as u8, (i % 16) as u8);
            h.request(c, SyncRequest::LockAcquire { var });
        }
        assert_eq!(
            h.completed().len(),
            locks.len(),
            "uncontended locks all granted"
        );
        for (i, &var) in locks.iter().enumerate() {
            let c = core((i % 4) as u8, (i % 16) as u8);
            h.request(c, SyncRequest::LockRelease { var });
        }
        let stats = h.mech.stats(h.ctx.now);
        assert!(stats.overflowed_requests > 0, "expected ST overflow");
        assert!(stats.mem_accesses > 0, "overflow must touch memory");
    }

    #[test]
    fn misar_overflow_modes_cost_more_traffic_than_integrated() {
        let locks: Vec<Addr> = (0..24).map(|i| Addr((1 << 22) + i * 64)).collect();
        let run = |mode: OverflowMode| {
            let params = MechanismParams::new(MechanismKind::SynCron)
                .with_st_entries(2)
                .with_overflow_mode(mode);
            let mut h = Harness::with_params(params);
            // Hold many distinct locks at the same time so the 2-entry STs overflow.
            for (i, &var) in locks.iter().enumerate() {
                let c = core((i % 4) as u8, (i % 16) as u8);
                h.request(c, SyncRequest::LockAcquire { var });
            }
            for (i, &var) in locks.iter().enumerate() {
                let c = core((i % 4) as u8, (i % 16) as u8);
                h.request(c, SyncRequest::LockRelease { var });
            }
            assert_eq!(
                h.completed().len(),
                locks.len(),
                "{mode:?}: every acquire must complete"
            );
            h.ctx.local_hops + h.ctx.remote_hops
        };
        let integrated = run(OverflowMode::Integrated);
        let central = run(OverflowMode::MiSarCentral);
        let distrib = run(OverflowMode::MiSarDistributed);
        assert!(
            central > integrated,
            "central {central} vs integrated {integrated}"
        );
        assert!(
            distrib > integrated,
            "distrib {distrib} vs integrated {integrated}"
        );
    }

    #[test]
    fn stats_track_messages_and_occupancy() {
        let mut h = Harness::new(MechanismKind::SynCron);
        let var = lock_var();
        h.request(core(0, 0), SyncRequest::LockAcquire { var });
        h.request(core(0, 0), SyncRequest::LockRelease { var });
        let stats = h.mech.stats(h.ctx.now);
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.completions, 1);
        assert!(stats.local_messages >= 2);
        assert!(
            stats.global_messages >= 1,
            "acquire crossed to the master SE"
        );
        assert!(stats.st_max_occupancy > 0.0);
        assert_eq!(stats.overflowed_requests, 0);
    }

    fn bare_ctx() -> HarnessCtx {
        HarnessCtx {
            now: Time::ZERO,
            queue: EventQueue::new(),
            inbox: EventQueue::new(),
            completed: Vec::new(),
            local_hops: 0,
            remote_hops: 0,
            mem_accesses: 0,
        }
    }

    fn drain_ctx(mech: &mut ProtocolMechanism, ctx: &mut HarnessCtx) {
        while ctx.drive(mech) {}
    }

    #[test]
    fn arena_recycles_slots_without_leaking_state_between_addresses() {
        let mut mech =
            ProtocolMechanism::new(ProtocolConfig::for_kind(MechanismKind::SynCron, 4, 16));
        let mut ctx = bare_ctx();
        let a = lock_var();
        let b = Addr(a.value() + 64);

        // Holding A occupies slots at the requesting unit (local lock) and the
        // master (master lock).
        mech.request(&mut ctx, core(0, 0), SyncRequest::LockAcquire { var: a });
        drain_ctx(&mut mech, &mut ctx);
        let live: usize = mech.engines.iter().map(|e| e.vars.live()).sum();
        assert!(live >= 2, "holding a lock must occupy arena slots: {live}");

        // Releasing A must return every slot to the free list.
        mech.request(&mut ctx, core(0, 0), SyncRequest::LockRelease { var: a });
        drain_ctx(&mut mech, &mut ctx);
        for (i, e) in mech.engines.iter().enumerate() {
            assert_eq!(e.vars.live(), 0, "engine {i} leaked a slot");
        }

        // B now claims the recycled slots: the index answers B (not A) and the
        // recycled state is clean — no waiters or ownership leaked from A.
        mech.request(&mut ctx, core(0, 0), SyncRequest::LockAcquire { var: b });
        drain_ctx(&mut mech, &mut ctx);
        let e0 = &mech.engines[0];
        assert!(e0.vars.lookup(a).is_none(), "stale index entry for A");
        let slot = e0.vars.lookup(b).expect("B tracked at the local engine") as usize;
        assert_eq!(e0.vars.addr(slot), b);
        let ll = e0.vars.local_lock(slot).expect("local lock state");
        assert_eq!(ll.holder, Some(core(0, 0)));
        assert!(ll.waiters.is_empty(), "waiters leaked across the recycle");
        assert!(ll.has_ownership);
        mech.request(&mut ctx, core(0, 0), SyncRequest::LockRelease { var: b });
        drain_ctx(&mut mech, &mut ctx);
    }

    #[test]
    fn arena_tracks_colliding_addresses_in_distinct_slots() {
        // Addresses that share arena slots over time (or collide in the hash
        // index) must never share one *concurrently*: N simultaneously-held
        // locks occupy N distinct slots with independent state.
        let mut mech =
            ProtocolMechanism::new(ProtocolConfig::for_kind(MechanismKind::SynCron, 4, 16));
        let mut ctx = bare_ctx();
        let vars: Vec<Addr> = (0..8).map(|i| Addr((1 << 22) + i * 64)).collect();
        for (i, &var) in vars.iter().enumerate() {
            mech.request(&mut ctx, core(0, i as u8), SyncRequest::LockAcquire { var });
            drain_ctx(&mut mech, &mut ctx);
        }
        let e0 = &mech.engines[0];
        let mut slots: Vec<u32> = vars
            .iter()
            .map(|&v| e0.vars.lookup(v).expect("held lock tracked"))
            .collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), vars.len(), "two variables shared a slot");
        for (i, &var) in vars.iter().enumerate() {
            let slot = e0.vars.lookup(var).unwrap() as usize;
            assert_eq!(e0.vars.addr(slot), var);
            assert_eq!(
                e0.vars.local_lock(slot).unwrap().holder,
                Some(core(0, i as u8)),
                "slot state crossed between variables"
            );
        }
        for (i, &var) in vars.iter().enumerate() {
            mech.request(&mut ctx, core(0, i as u8), SyncRequest::LockRelease { var });
            drain_ctx(&mut mech, &mut ctx);
        }
    }

    #[test]
    fn arena_pre_sized_from_geometry_never_grows_in_steady_state() {
        let mut mech =
            ProtocolMechanism::new(ProtocolConfig::for_kind(MechanismKind::SynCron, 4, 16));
        let mut ctx = bare_ctx();
        let caps: Vec<usize> = mech.engines.iter().map(|e| e.vars.capacity()).collect();
        assert!(
            caps.iter().all(|&c| c >= 64 + 16),
            "arena must be pre-sized from st_entries + cores_per_unit: {caps:?}"
        );
        // Steady state: 16 locks cycle concurrently for many rounds, churning
        // the free list. Neither the slot vectors nor (by extension) the index
        // may grow past the pre-size.
        let vars: Vec<Addr> = (0..16).map(|i| Addr((1 << 22) + i * 64)).collect();
        for _ in 0..25 {
            for (i, &var) in vars.iter().enumerate() {
                let c = core((i % 4) as u8, (i % 16) as u8);
                mech.request(&mut ctx, c, SyncRequest::LockAcquire { var });
                drain_ctx(&mut mech, &mut ctx);
            }
            for (i, &var) in vars.iter().enumerate() {
                let c = core((i % 4) as u8, (i % 16) as u8);
                mech.request(&mut ctx, c, SyncRequest::LockRelease { var });
                drain_ctx(&mut mech, &mut ctx);
            }
        }
        let after: Vec<usize> = mech.engines.iter().map(|e| e.vars.capacity()).collect();
        assert_eq!(caps, after, "steady state reallocated an arena");
    }

    #[test]
    fn batching_merges_broadcast_wakeups_without_changing_results() {
        // Central + condvar broadcast: the master injects one lock re-acquire
        // per waiter at the same timestamp, back to back — the canonical
        // O(waiters) -> O(1) batching case. Completions must be identical with
        // batching on and off; the event count must shrink.
        let run = |batching: bool| {
            let config = ProtocolConfig::for_kind(MechanismKind::Central, 4, 16)
                .with_message_batching(batching);
            let mut mech = ProtocolMechanism::new(config);
            let mut ctx = bare_ctx();
            let cond = Addr(1 << 22);
            let lock = Addr((1 << 22) + 64);
            for c in 0..6u8 {
                mech.request(&mut ctx, core(0, c), SyncRequest::LockAcquire { var: lock });
                drain_ctx(&mut mech, &mut ctx);
                mech.request(
                    &mut ctx,
                    core(0, c),
                    SyncRequest::CondWait { var: cond, lock },
                );
                drain_ctx(&mut mech, &mut ctx);
            }
            mech.request(
                &mut ctx,
                core(1, 0),
                SyncRequest::CondBroadcast { var: cond },
            );
            drain_ctx(&mut mech, &mut ctx);
            // Serve the lock convoy to completion.
            for _ in 0..6 {
                let holder = ctx.completed.last().unwrap().0;
                mech.request(&mut ctx, holder, SyncRequest::LockRelease { var: lock });
                drain_ctx(&mut mech, &mut ctx);
            }
            (ctx.completed.clone(), ctx.queue.scheduled_total())
        };
        let (with_batching, events_batched) = run(true);
        let (without, events_unbatched) = run(false);
        assert_eq!(
            with_batching, without,
            "batching changed completion order or timing"
        );
        assert!(
            events_batched < events_unbatched,
            "broadcast wake-ups must coalesce: {events_batched} vs {events_unbatched}"
        );
    }

    #[test]
    fn batching_preserves_all_protocol_semantics_across_mechanisms() {
        // The whole harness suite runs with batching on (the default); this
        // differential re-runs a contended mixed workload with batching off and
        // pins completion-for-completion equality.
        for kind in [
            MechanismKind::Central,
            MechanismKind::Hier,
            MechanismKind::SynCron,
            MechanismKind::SynCronFlat,
        ] {
            let run = |batching: bool| {
                let config = ProtocolConfig::for_kind(kind, 4, 16).with_message_batching(batching);
                let mut mech = ProtocolMechanism::new(config);
                let mut ctx = bare_ctx();
                let bar = Addr(2 << 22);
                for u in 0..4u8 {
                    for c in 0..16u8 {
                        mech.request(
                            &mut ctx,
                            core(u, c),
                            SyncRequest::BarrierWait {
                                var: bar,
                                participants: 64,
                                scope: BarrierScope::AcrossUnits,
                            },
                        );
                    }
                }
                drain_ctx(&mut mech, &mut ctx);
                let lock = lock_var();
                for c in 0..8u8 {
                    mech.request(&mut ctx, core(2, c), SyncRequest::LockAcquire { var: lock });
                    drain_ctx(&mut mech, &mut ctx);
                    mech.request(&mut ctx, core(2, c), SyncRequest::LockRelease { var: lock });
                    drain_ctx(&mut mech, &mut ctx);
                }
                ctx.completed
            };
            assert_eq!(run(true), run(false), "{kind:?}");
        }
    }

    #[test]
    fn central_serializes_all_requests_on_one_server() {
        // With Central, every request goes to unit 0's server; requests from unit 0
        // cores do not cross units but requests from other units do.
        let mut h = Harness::new(MechanismKind::Central);
        let var = lock_var(); // homed at unit 1, but Central serves everything at unit 0
        h.request(core(0, 0), SyncRequest::LockAcquire { var });
        assert_eq!(h.ctx.remote_hops, 0);
        h.request(core(0, 0), SyncRequest::LockRelease { var });
        h.request(core(2, 0), SyncRequest::LockAcquire { var });
        assert!(h.ctx.remote_hops > 0);
        h.request(core(2, 0), SyncRequest::LockRelease { var });
    }
}
