//! Script-based core programs.
//!
//! Most workloads in the evaluation have a regular per-operation structure: some local
//! compute, a traversal over the data structure (a sequence of loads and, for
//! fine-grained structures, lock acquisitions), a critical section, and the releases.
//! [`ScriptProgram`] captures that pattern: an [`OpGenerator`] produces the action
//! sequence of the *next* operation against the shared workload state, and the program
//! replays it one action at a time as the simulated core advances.

use std::collections::VecDeque;

use syncron_sim::time::Time;
use syncron_sim::GlobalCoreId;
use syncron_system::workload::{Action, CoreProgram};

/// Produces the per-operation action sequences of one core.
pub trait OpGenerator: Send {
    /// Appends the actions of the core's next operation to `script`. Returns `false`
    /// when the core has no more operations (the program then finishes).
    fn next_op(&mut self, core: GlobalCoreId, script: &mut VecDeque<Action>) -> bool;
}

/// A [`CoreProgram`] that replays operations produced by an [`OpGenerator`].
#[derive(Debug)]
pub struct ScriptProgram<G> {
    generator: G,
    script: VecDeque<Action>,
    ops: u64,
    finished: bool,
}

impl<G: OpGenerator> ScriptProgram<G> {
    /// Wraps an operation generator.
    pub fn new(generator: G) -> Self {
        ScriptProgram {
            generator,
            script: VecDeque::new(),
            ops: 0,
            finished: false,
        }
    }
}

impl<G: OpGenerator> CoreProgram for ScriptProgram<G> {
    fn step(&mut self, core: GlobalCoreId, _now: Time) -> Action {
        loop {
            if let Some(action) = self.script.pop_front() {
                return action;
            }
            if self.finished {
                return Action::Done;
            }
            if self.generator.next_op(core, &mut self.script) {
                self.ops += 1;
            } else {
                self.finished = true;
            }
        }
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

/// Small helpers for building action scripts.
pub mod build {
    use super::*;
    use syncron_core::request::SyncRequest;
    use syncron_sim::Addr;

    /// Pushes a compute action of `instrs` instructions (skipped when zero).
    pub fn compute(script: &mut VecDeque<Action>, instrs: u64) {
        if instrs > 0 {
            script.push_back(Action::Compute { instrs });
        }
    }

    /// Pushes a load.
    pub fn load(script: &mut VecDeque<Action>, addr: Addr) {
        script.push_back(Action::Load { addr });
    }

    /// Pushes a store.
    pub fn store(script: &mut VecDeque<Action>, addr: Addr) {
        script.push_back(Action::Store { addr });
    }

    /// Pushes a lock acquisition.
    pub fn lock(script: &mut VecDeque<Action>, var: Addr) {
        script.push_back(Action::Sync(SyncRequest::LockAcquire { var }));
    }

    /// Pushes a lock release.
    pub fn unlock(script: &mut VecDeque<Action>, var: Addr) {
        script.push_back(Action::Sync(SyncRequest::LockRelease { var }));
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use syncron_sim::{Addr, CoreId, UnitId};

    struct TwoOps {
        remaining: u32,
    }

    impl OpGenerator for TwoOps {
        fn next_op(&mut self, _core: GlobalCoreId, script: &mut VecDeque<Action>) -> bool {
            if self.remaining == 0 {
                return false;
            }
            self.remaining -= 1;
            compute(script, 10);
            load(script, Addr(0x40));
            store(script, Addr(0x80));
            true
        }
    }

    #[test]
    fn replays_generated_actions_then_finishes() {
        let core = GlobalCoreId::new(UnitId(0), CoreId(0));
        let mut p = ScriptProgram::new(TwoOps { remaining: 2 });
        let mut actions = Vec::new();
        loop {
            let a = p.step(core, Time::ZERO);
            if a == Action::Done {
                break;
            }
            actions.push(a);
        }
        assert_eq!(actions.len(), 6);
        assert_eq!(actions[0], Action::Compute { instrs: 10 });
        assert_eq!(actions[1], Action::Load { addr: Addr(0x40) });
        assert_eq!(p.ops_completed(), 2);
        // Once done, it stays done.
        assert_eq!(p.step(core, Time::ZERO), Action::Done);
    }

    #[test]
    fn zero_compute_is_elided() {
        let mut script = VecDeque::new();
        compute(&mut script, 0);
        assert!(script.is_empty());
        lock(&mut script, Addr(0x100));
        unlock(&mut script, Addr(0x100));
        assert_eq!(script.len(), 2);
    }

    #[test]
    fn empty_generator_finishes_immediately() {
        struct Never;
        impl OpGenerator for Never {
            fn next_op(&mut self, _c: GlobalCoreId, _s: &mut VecDeque<Action>) -> bool {
                false
            }
        }
        let core = GlobalCoreId::new(UnitId(0), CoreId(0));
        let mut p = ScriptProgram::new(Never);
        assert_eq!(p.step(core, Time::ZERO), Action::Done);
        assert_eq!(p.ops_completed(), 0);
    }
}
