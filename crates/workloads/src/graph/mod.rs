//! Graphs, graph generation and partitioning.
//!
//! The paper's graph applications (Table 6) run over four real-world graphs
//! (wikipedia-20051105, soc-LiveJournal1, sx-stackoverflow, com-Orkut) statically
//! partitioned across NDP units. Those datasets are not redistributable here, so this
//! module provides an R-MAT (power-law) and a uniform random generator whose outputs
//! have the structural properties the evaluation depends on — degree skew (contention
//! on hub vertices) and partition locality — plus a greedy min-edge-cut partitioner
//! standing in for Metis (Figure 19).

pub mod apps;

pub use apps::{GraphAlgo, GraphApp, Partitioning};

use syncron_sim::rng::SimRng;

/// An undirected graph in CSR form.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Number of vertices.
    pub vertices: usize,
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

impl Graph {
    /// Builds a CSR graph from an edge list (both directions are inserted).
    pub fn from_edges(vertices: usize, edge_list: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u32; vertices];
        for &(a, b) in edge_list {
            if a == b || a as usize >= vertices || b as usize >= vertices {
                continue;
            }
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = vec![0u32; vertices + 1];
        for v in 0..vertices {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut edges = vec![0u32; offsets[vertices] as usize];
        for &(a, b) in edge_list {
            if a == b || a as usize >= vertices || b as usize >= vertices {
                continue;
            }
            edges[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            edges[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        Graph {
            vertices,
            offsets,
            edges,
        }
    }

    /// Generates a uniform random graph with `vertices` vertices and roughly
    /// `avg_degree` undirected edges per vertex.
    pub fn uniform(vertices: usize, avg_degree: usize, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let target_edges = vertices * avg_degree / 2;
        let mut edge_list = Vec::with_capacity(target_edges);
        for _ in 0..target_edges {
            let a = rng.gen_range(vertices as u64) as u32;
            let b = rng.gen_range(vertices as u64) as u32;
            edge_list.push((a, b));
        }
        Graph::from_edges(vertices, &edge_list)
    }

    /// Generates an R-MAT (power-law) graph with `vertices` vertices (rounded up to a
    /// power of two internally) and roughly `avg_degree` undirected edges per vertex,
    /// using the canonical partition probabilities (a, b, c) = (0.57, 0.19, 0.19).
    pub fn rmat(vertices: usize, avg_degree: usize, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let scale = usize::BITS - vertices.max(2).next_power_of_two().leading_zeros() - 1;
        let n = 1usize << scale;
        let target_edges = vertices * avg_degree / 2;
        let mut edge_list = Vec::with_capacity(target_edges);
        for _ in 0..target_edges {
            let (mut lo_a, mut lo_b) = (0u32, 0u32);
            for _ in 0..scale {
                let r = rng.gen_f64();
                let (da, db) = if r < 0.57 {
                    (0, 0)
                } else if r < 0.76 {
                    (0, 1)
                } else if r < 0.95 {
                    (1, 0)
                } else {
                    (1, 1)
                };
                lo_a = (lo_a << 1) | da;
                lo_b = (lo_b << 1) | db;
            }
            let a = lo_a % vertices.max(1) as u32;
            let b = lo_b % vertices.max(1) as u32;
            edge_list.push((a, b));
        }
        let _ = n;
        Graph::from_edges(vertices, &edge_list)
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbors of vertex `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.edges[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Total number of directed edge slots (twice the undirected edge count).
    pub fn edge_slots(&self) -> usize {
        self.edges.len()
    }

    /// Maximum vertex degree (the "hub" size — R-MAT graphs have much larger hubs than
    /// uniform graphs of the same average degree).
    pub fn max_degree(&self) -> usize {
        (0..self.vertices as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }
}

/// Assigns vertices to `parts` partitions by striping vertex IDs (the paper's default
/// static partitioning).
pub fn partition_striped(vertices: usize, parts: usize) -> Vec<u32> {
    (0..vertices).map(|v| (v % parts) as u32).collect()
}

/// Greedy BFS-grown balanced partitioning that minimizes crossing edges — the stand-in
/// for the Metis partitioning of Figure 19.
pub fn partition_greedy(graph: &Graph, parts: usize) -> Vec<u32> {
    let n = graph.vertices;
    let capacity = n.div_ceil(parts);
    let mut assignment = vec![u32::MAX; n];
    let mut sizes = vec![0usize; parts];
    let mut current_part = 0usize;
    let mut queue = std::collections::VecDeque::new();

    for start in 0..n as u32 {
        if assignment[start as usize] != u32::MAX {
            continue;
        }
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            if assignment[v as usize] != u32::MAX {
                continue;
            }
            // Move to the next partition once the current one is full.
            while sizes[current_part] >= capacity && current_part + 1 < parts {
                current_part += 1;
            }
            assignment[v as usize] = current_part as u32;
            sizes[current_part] += 1;
            for &u in graph.neighbors(v) {
                if assignment[u as usize] == u32::MAX {
                    queue.push_back(u);
                }
            }
        }
    }
    assignment
}

/// Number of undirected edges whose endpoints live in different partitions.
pub fn edge_cut(graph: &Graph, assignment: &[u32]) -> usize {
    let mut cut = 0;
    for v in 0..graph.vertices as u32 {
        for &u in graph.neighbors(v) {
            if u > v && assignment[v as usize] != assignment[u as usize] {
                cut += 1;
            }
        }
    }
    cut
}

/// A named synthetic graph configuration standing in for one of the paper's inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphInput {
    /// Label used in reports (the paper's input abbreviation: wk, sl, sx, co).
    pub name: &'static str,
    /// Number of vertices.
    pub vertices: usize,
    /// Average degree.
    pub avg_degree: usize,
    /// Whether to use the R-MAT (power-law) generator; otherwise uniform.
    pub rmat: bool,
}

impl GraphInput {
    /// Synthetic stand-ins for the paper's four graphs, at simulation-tractable scale
    /// but with increasing size and realistic degree skew (see `DESIGN.md`).
    pub const ALL: [GraphInput; 4] = [
        GraphInput {
            name: "wk",
            vertices: 3_000,
            avg_degree: 8,
            rmat: true,
        },
        GraphInput {
            name: "sl",
            vertices: 4_500,
            avg_degree: 10,
            rmat: true,
        },
        GraphInput {
            name: "sx",
            vertices: 6_000,
            avg_degree: 8,
            rmat: false,
        },
        GraphInput {
            name: "co",
            vertices: 8_000,
            avg_degree: 12,
            rmat: true,
        },
    ];

    /// Looks up an input by its label.
    pub fn by_name(name: &str) -> Option<GraphInput> {
        GraphInput::ALL.iter().copied().find(|g| g.name == name)
    }

    /// Generates the graph for this input.
    pub fn generate(&self, seed: u64) -> Graph {
        if self.rmat {
            Graph::rmat(self.vertices, self.avg_degree, seed)
        } else {
            Graph::uniform(self.vertices, self.avg_degree, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_construction_is_symmetric() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert_eq!(g.vertices, 4);
        assert_eq!(g.edge_slots(), 8);
        assert!(g.neighbors(0).contains(&1));
        assert!(g.neighbors(1).contains(&0));
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn self_loops_and_out_of_range_edges_dropped() {
        let g = Graph::from_edges(3, &[(0, 0), (1, 7), (0, 1)]);
        assert_eq!(g.edge_slots(), 2);
    }

    #[test]
    fn generators_hit_requested_size() {
        let g = Graph::uniform(1000, 8, 1);
        assert_eq!(g.vertices, 1000);
        let avg = g.edge_slots() as f64 / g.vertices as f64;
        assert!(avg > 6.0 && avg < 10.0, "avg degree {avg}");
        let r = Graph::rmat(1000, 8, 1);
        assert_eq!(r.vertices, 1000);
    }

    #[test]
    fn rmat_is_more_skewed_than_uniform() {
        let u = Graph::uniform(2000, 8, 7);
        let r = Graph::rmat(2000, 8, 7);
        assert!(
            r.max_degree() > 2 * u.max_degree(),
            "R-MAT hub {} vs uniform hub {}",
            r.max_degree(),
            u.max_degree()
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let a = Graph::rmat(500, 8, 42);
        let b = Graph::rmat(500, 8, 42);
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn striped_partitioning_is_balanced() {
        let p = partition_striped(10, 4);
        assert_eq!(p.len(), 10);
        for part in 0..4u32 {
            let count = p.iter().filter(|&&x| x == part).count();
            assert!((2..=3).contains(&count));
        }
    }

    #[test]
    fn greedy_partitioning_reduces_edge_cut() {
        let g = Graph::rmat(2000, 8, 3);
        let striped = partition_striped(g.vertices, 4);
        let greedy = partition_greedy(&g, 4);
        assert_eq!(greedy.len(), g.vertices);
        assert!(greedy.iter().all(|&p| p < 4));
        let cut_striped = edge_cut(&g, &striped);
        let cut_greedy = edge_cut(&g, &greedy);
        assert!(
            cut_greedy < cut_striped,
            "greedy cut {cut_greedy} should beat striped cut {cut_striped}"
        );
        // Balance: no partition holds more than ~2x its fair share.
        for part in 0..4u32 {
            let count = greedy.iter().filter(|&&x| x == part).count();
            assert!(count <= g.vertices / 2, "partition {part} holds {count}");
        }
    }

    #[test]
    fn named_inputs_resolve() {
        assert_eq!(GraphInput::ALL.len(), 4);
        assert!(GraphInput::by_name("wk").is_some());
        assert!(GraphInput::by_name("zz").is_none());
        let g = GraphInput::by_name("wk").unwrap().generate(1);
        assert_eq!(g.vertices, 3_000);
    }
}
