//! Regenerates Figure 13 of the paper (SynCron scalability, 1-4 NDP units).
fn main() {
    syncron_bench::experiments::realapps::fig13().print();
}
