//! Simulator-throughput sweep: calendar-queue scheduler vs the `BinaryHeap`
//! baseline across schemes × geometries (4×16 up to 16×256), plus the
//! shard-scaling sweep of the conservative-PDES execution mode (1/2/4/8
//! workers, identical simulations, wall-clock speedup) and the fast-path
//! attribution sweep (quantized M/D/1, burst resume, column batching — each
//! lever alone and all together vs the everything-off baseline) and the
//! resilience sweep (drop rate × mechanism, recovery overhead and goodput
//! degradation under injected message loss).
//!
//! Prints both tables and writes `BENCH_simcore.json` (override the path with
//! `SYNCRON_BENCH_OUT`), then re-parses and schema-validates the file so a
//! malformed export fails here rather than in a later trajectory job.

use syncron_bench::experiments::simcore;

fn main() {
    let points = simcore::measure();
    simcore::simcore_table(&points).print();
    let shards = simcore::measure_shards();
    simcore::shard_table(&shards).print();
    let fastpath = simcore::measure_fastpath();
    simcore::fastpath_table(&fastpath).print();
    let resilience = simcore::measure_resilience();
    simcore::resilience_table(&resilience).print();

    // Default to the repository root (bench targets run with the package as
    // cwd), so the trajectory file lands next to EXPERIMENTS.md.
    let path = std::env::var("SYNCRON_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simcore.json").into()
    });
    let doc = simcore::simcore_json(&points, &shards, &fastpath, &resilience);
    std::fs::write(&path, doc.to_json_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let parsed =
        syncron_harness::json::parse(&text).unwrap_or_else(|e| panic!("{path} is not JSON: {e}"));
    simcore::validate_simcore_json(&parsed)
        .unwrap_or_else(|e| panic!("{path} fails schema validation: {e}"));
    eprintln!("wrote {path} (schema {})", simcore::SIMCORE_SCHEMA);
}
