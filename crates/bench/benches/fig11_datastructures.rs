//! Regenerates Figure 11 of the paper (nine pointer-chasing data structures).
fn main() {
    for table in syncron_bench::experiments::datastructures::fig11() {
        table.print();
    }
}
