//! Table 8: area and power of the Synchronization Engine vs an ARM Cortex-A7.

use crate::Table;
use syncron_core::hw_cost::{CortexA7, SeCost};

/// Table 8: SE component areas, total area and power, compared to an ARM Cortex-A7.
pub fn table08() -> Table {
    let se = SeCost::paper_default();
    let a7 = CortexA7::REFERENCE;
    let mut table = Table::new(
        "Table 8: Synchronization Engine area/power vs ARM Cortex-A7",
        &["component", "SE (40nm)", "ARM Cortex-A7 (28nm)"],
    );
    table.push_row(vec![
        "SPU area (mm^2)".into(),
        format!("{:.4}", se.spu_mm2),
        "-".into(),
    ]);
    table.push_row(vec![
        "ST area (mm^2)".into(),
        format!("{:.4}", se.st_mm2),
        "-".into(),
    ]);
    table.push_row(vec![
        "Indexing counters area (mm^2)".into(),
        format!("{:.4}", se.counters_mm2),
        "-".into(),
    ]);
    table.push_row(vec![
        "Total area (mm^2)".into(),
        format!("{:.4}", se.total_mm2()),
        format!("{:.2} (with 32KB L1)", a7.area_mm2),
    ]);
    table.push_row(vec![
        "Power (mW)".into(),
        format!("{:.1}", se.power_mw),
        format!("{:.0}", a7.power_mw),
    ]);
    table.push_row(vec![
        "Relative area".into(),
        format!("{:.1}%", se.area_vs_cortex_a7() * 100.0),
        "100%".into(),
    ]);
    table.push_row(vec![
        "Relative power".into(),
        format!("{:.1}%", se.power_vs_cortex_a7() * 100.0),
        "100%".into(),
    ]);
    table
}

/// Sensitivity of the SE area to the ST size (companion to the Figure 22/23 sweeps).
pub fn st_size_area_sweep() -> Table {
    let mut table = Table::new(
        "SE area vs ST size (sensitivity companion to Figures 22/23)",
        &[
            "ST entries",
            "ST area (mm^2)",
            "total SE area (mm^2)",
            "power (mW)",
        ],
    );
    for st in [8usize, 16, 32, 48, 64, 128, 256] {
        let se = SeCost::for_config(st, 256, 4, 16);
        table.push_row(vec![
            st.to_string(),
            format!("{:.4}", se.st_mm2),
            format!("{:.4}", se.total_mm2()),
            format!("{:.2}", se.power_mw),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table08_reports_paper_values() {
        let t = table08();
        assert!(t.render().contains("0.0461"));
        assert!(t.render().contains("2.7"));
        assert_eq!(st_size_area_sweep().rows.len(), 7);
    }
}
