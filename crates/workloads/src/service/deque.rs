//! Work-stealing deque layer with per-queue locks and semaphore parking.
//!
//! Each client core owns a lock-protected task queue; a per-unit counting
//! semaphore tracks how many tasks are parked in the unit. Serving a request
//! means pushing a task onto the own queue (lock, store, unlock), posting the
//! unit semaphore, then acting as a worker: wait on the semaphore, pick a victim
//! queue in the unit (Zipf-skewed, so one queue is persistently hot and its lock
//! contends), pop from it, and process the stolen task by touching the shared key
//! space. Every core posts before it waits, so the semaphore count seen by any
//! wait is ≥ 1 and the workload is deadlock-free by construction while still
//! exercising the semaphore protocol on every request.

use syncron_core::request::SyncRequest;
use syncron_sim::rng::SimRng;
use syncron_sim::time::Time;
use syncron_sim::{Addr, GlobalCoreId};
use syncron_system::address::AddressSpace;
use syncron_system::config::NdpConfig;
use syncron_system::workload::{Action, CoreProgram, Workload};

use super::zipf::ZipfSampler;
use super::{service_name, LogHistogram, OpenLoop, ServiceParams, ServiceShape};

/// Request-processing overhead in instructions.
const REQUEST_INSTRS: u64 = 16;

/// Zipf skew of victim selection: mild, so stealing concentrates on a hot queue
/// without starving the rest.
const VICTIM_SKEW: f64 = 0.8;

/// The work-stealing open-loop service workload.
#[derive(Clone, Copy, Debug)]
pub struct StealService {
    params: ServiceParams,
}

impl StealService {
    /// Creates the workload.
    pub fn new(params: ServiceParams) -> Self {
        StealService { params }
    }
}

#[derive(Debug)]
struct StealProgram {
    open: OpenLoop,
    rng: SimRng,
    zipf: ZipfSampler,
    /// `(lock, slot)` of every queue in this core's unit, own queue included.
    unit_queues: Vec<(Addr, Addr)>,
    /// Index of the own queue within `unit_queues`.
    own: usize,
    unit_sem: Addr,
    victim_zipf: ZipfSampler,
    /// Per-unit data partitions for stolen-task payloads.
    data: Vec<Addr>,
    units: u64,
    phase: u8,
    victim: usize,
    key_addr: Addr,
    completing: bool,
}

impl CoreProgram for StealProgram {
    fn step(&mut self, _core: GlobalCoreId, now: Time) -> Action {
        match self.phase {
            0 => {
                if self.completing {
                    self.completing = false;
                    self.open.complete(now);
                }
                if self.open.exhausted() {
                    return Action::Done;
                }
                if let Some(idle) = self.open.admit(now) {
                    return idle;
                }
                self.victim = self.victim_zipf.sample(&mut self.rng) as usize;
                let key = self.zipf.sample(&mut self.rng);
                self.key_addr =
                    self.data[(key % self.units) as usize].offset(key / self.units * 64);
                self.phase = 1;
                Action::Compute {
                    instrs: REQUEST_INSTRS,
                }
            }
            // Push the task onto the own queue.
            1 => {
                self.phase = 2;
                Action::Sync(SyncRequest::LockAcquire {
                    var: self.unit_queues[self.own].0,
                })
            }
            2 => {
                self.phase = 3;
                Action::Store {
                    addr: self.unit_queues[self.own].1,
                }
            }
            3 => {
                self.phase = 4;
                Action::Sync(SyncRequest::LockRelease {
                    var: self.unit_queues[self.own].0,
                })
            }
            // Announce it, then park as a worker until a task is available. The
            // post always precedes the wait, so the wait can never block forever.
            4 => {
                self.phase = 5;
                Action::Sync(SyncRequest::SemPost { var: self.unit_sem })
            }
            5 => {
                self.phase = 6;
                Action::Sync(SyncRequest::SemWait {
                    var: self.unit_sem,
                    initial: 0,
                })
            }
            // Steal from the (skewed) victim queue.
            6 => {
                self.phase = 7;
                Action::Sync(SyncRequest::LockAcquire {
                    var: self.unit_queues[self.victim].0,
                })
            }
            7 => {
                self.phase = 8;
                Action::Load {
                    addr: self.unit_queues[self.victim].1,
                }
            }
            8 => {
                self.phase = 9;
                Action::Store {
                    addr: self.unit_queues[self.victim].1,
                }
            }
            9 => {
                self.phase = 10;
                Action::Sync(SyncRequest::LockRelease {
                    var: self.unit_queues[self.victim].0,
                })
            }
            // Process the stolen task: touch its payload in the shared key space.
            _ => {
                self.phase = 0;
                self.completing = true;
                Action::Load {
                    addr: self.key_addr,
                }
            }
        }
    }

    fn ops_completed(&self) -> u64 {
        self.open.ops
    }

    fn latency_histogram(&self) -> Option<&LogHistogram> {
        Some(&self.open.hist)
    }
}

impl Workload for StealService {
    fn shard_safe(&self) -> bool {
        // Programs keep all state private; cores interact only through
        // simulated synchronization.
        true
    }

    fn name(&self) -> String {
        service_name(ServiceShape::Steal, &self.params)
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let units = config.units as u64;
        let keys = self.params.keys.max(1);
        let data = space.allocate_partitioned(
            keys.div_ceil(units) * Addr::LINE_BYTES,
            syncron_system::address::DataClass::SharedReadWrite,
        );
        // One (lock, slot) pair per client, homed at the client's unit, plus one
        // semaphore per unit.
        let queues: Vec<(Addr, Addr)> = clients
            .iter()
            .map(|c| {
                (
                    space.allocate_shared_rw(64, c.unit),
                    space.allocate_shared_rw(64, c.unit),
                )
            })
            .collect();
        let sems: Vec<Addr> = (0..config.units)
            .map(|u| space.allocate_shared_rw(64, syncron_sim::UnitId(u as u8)))
            .collect();
        clients
            .iter()
            .enumerate()
            .map(|(i, client)| {
                let unit_members: Vec<usize> = clients
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.unit == client.unit)
                    .map(|(j, _)| j)
                    .collect();
                let own = unit_members
                    .iter()
                    .position(|&j| j == i)
                    .expect("client in own unit");
                let unit_queues: Vec<(Addr, Addr)> =
                    unit_members.iter().map(|&j| queues[j]).collect();
                Box::new(StealProgram {
                    open: OpenLoop::new(
                        self.params.arrival,
                        config.seed ^ ((i as u64) << 24) ^ 0xDE0E,
                        self.params.requests,
                        config.core_cycle(),
                    ),
                    rng: SimRng::seed_from(config.seed ^ ((i as u64) << 24) ^ 0x57EA),
                    zipf: ZipfSampler::new(keys, self.params.zipf_s),
                    victim_zipf: ZipfSampler::new(unit_queues.len() as u64, VICTIM_SKEW),
                    unit_queues,
                    own,
                    unit_sem: sems[client.unit.index()],
                    data: data.clone(),
                    units,
                    phase: 0,
                    victim: 0,
                    key_addr: Addr(0),
                    completing: false,
                }) as Box<dyn CoreProgram>
            })
            .collect()
    }
}
