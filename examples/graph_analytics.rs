//! Graph analytics on the simulated NDP system: runs PageRank and BFS over a synthetic
//! power-law graph under Central, Hier, SynCron and Ideal, and shows the effect of a
//! better graph partitioning (the paper's Figure 12 / Figure 19 scenario).
//!
//! ```bash
//! cargo run --release --example graph_analytics
//! ```

use syncron::prelude::*;
use syncron::workloads::graph::{
    edge_cut, partition_greedy, partition_striped, GraphAlgo, GraphApp, GraphInput, Partitioning,
};

fn main() {
    let input = GraphInput {
        name: "demo",
        vertices: 2_000,
        avg_degree: 8,
        rmat: true,
    };

    // How much does the greedy (Metis-like) partitioner help the placement?
    let graph = input.generate(1);
    let striped_cut = edge_cut(&graph, &partition_striped(graph.vertices, 4));
    let greedy_cut = edge_cut(&graph, &partition_greedy(&graph, 4));
    println!(
        "Synthetic R-MAT graph: {} vertices, {} directed edges, max degree {}",
        graph.vertices,
        graph.edge_slots(),
        graph.max_degree()
    );
    println!("Edge cut across 4 NDP units: striped={striped_cut}  greedy={greedy_cut}\n");

    for algo in [GraphAlgo::Pr, GraphAlgo::Bfs] {
        println!("--- {} ---", algo.name());
        let mut central = None;
        for kind in MechanismKind::COMPARED {
            let config = NdpConfig::builder()
                .mechanism(kind)
                .build()
                .expect("valid config");
            let report = syncron::system::run_workload(&config, &GraphApp::new(algo, input));
            let speedup = central
                .as_ref()
                .map(|c: &RunReport| report.speedup_over(c))
                .unwrap_or(1.0);
            if kind == MechanismKind::Central {
                central = Some(report.clone());
            }
            println!(
                "  {:<12} time={:<12} speedup={:<6.2} inter-unit traffic={:>8} KB",
                kind.name(),
                report.sim_time.to_string(),
                speedup,
                report.traffic.inter_unit_bytes / 1024,
            );
        }
    }

    // Better placement: same app, greedy partitioning, SynCron.
    println!("\n--- pr with better data placement (SynCron) ---");
    for (label, partitioning) in [
        ("striped", Partitioning::Striped),
        ("greedy", Partitioning::Greedy),
    ] {
        let config = NdpConfig::builder()
            .mechanism(MechanismKind::SynCron)
            .build()
            .expect("valid config");
        let wl = GraphApp::new(GraphAlgo::Pr, input).with_partitioning(partitioning);
        let report = syncron::system::run_workload(&config, &wl);
        println!(
            "  {:<8} time={:<12} inter-unit traffic={:>8} KB  max ST occupancy={:.0}%",
            label,
            report.sim_time.to_string(),
            report.traffic.inter_unit_bytes / 1024,
            report.sync.st_max_occupancy * 100.0,
        );
    }
}
