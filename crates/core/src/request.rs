//! Core-facing synchronization requests.
//!
//! These mirror SynCron's programming interface (Table 2 of the paper):
//! `lock_acquire/lock_release`, `barrier_wait_within_unit/across_units`,
//! `sem_wait/sem_post`, and `cond_wait/cond_signal/cond_broadcast`. A request is
//! carried to the local Synchronization Engine by one of the two ISA extensions:
//! `req_sync` (blocking; the instruction commits when the response message arrives)
//! for acquire-type semantics, and `req_async` (fire-and-forget) for release-type
//! semantics (Section 4.1.1).

use syncron_sim::Addr;

/// The four synchronization primitives SynCron supports.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PrimitiveKind {
    /// Mutual-exclusion lock.
    Lock,
    /// Barrier (within one NDP unit or across NDP units).
    Barrier,
    /// Counting semaphore.
    Semaphore,
    /// Condition variable (always associated with a lock).
    CondVar,
}

impl PrimitiveKind {
    /// All primitive kinds.
    pub const ALL: [PrimitiveKind; 4] = [
        PrimitiveKind::Lock,
        PrimitiveKind::Barrier,
        PrimitiveKind::Semaphore,
        PrimitiveKind::CondVar,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            PrimitiveKind::Lock => "lock",
            PrimitiveKind::Barrier => "barrier",
            PrimitiveKind::Semaphore => "semaphore",
            PrimitiveKind::CondVar => "condvar",
        }
    }
}

/// Scope of a barrier (Table 2 supports both).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BarrierScope {
    /// Only cores of a single NDP unit participate.
    WithinUnit,
    /// Cores from different NDP units participate.
    AcrossUnits,
}

/// One synchronization request issued by an NDP core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SyncRequest {
    /// Acquire the lock at `var`. Blocking.
    LockAcquire {
        /// Address of the lock variable.
        var: Addr,
    },
    /// Release the lock at `var`. Non-blocking.
    LockRelease {
        /// Address of the lock variable.
        var: Addr,
    },
    /// Wait on the barrier at `var` until `participants` cores have arrived. Blocking.
    BarrierWait {
        /// Address of the barrier variable.
        var: Addr,
        /// Total number of participating cores (the `initialCores` API argument).
        participants: u32,
        /// Whether participants span multiple NDP units.
        scope: BarrierScope,
    },
    /// Decrement the semaphore at `var`, waiting if it is zero. Blocking.
    SemWait {
        /// Address of the semaphore variable.
        var: Addr,
        /// Initial number of resources (the `initialResources` API argument); applied
        /// the first time the variable is touched.
        initial: u32,
    },
    /// Increment the semaphore at `var`. Non-blocking.
    SemPost {
        /// Address of the semaphore variable.
        var: Addr,
    },
    /// Atomically release `lock` and wait on the condition variable at `var`;
    /// re-acquires `lock` before returning. Blocking.
    CondWait {
        /// Address of the condition variable.
        var: Addr,
        /// Address of the associated lock (carried in the message's `MessageInfo`).
        lock: Addr,
    },
    /// Wake one waiter of the condition variable at `var`. Non-blocking.
    CondSignal {
        /// Address of the condition variable.
        var: Addr,
    },
    /// Wake all waiters of the condition variable at `var`. Non-blocking.
    CondBroadcast {
        /// Address of the condition variable.
        var: Addr,
    },
}

impl SyncRequest {
    /// The synchronization variable this request targets.
    pub fn var(&self) -> Addr {
        match *self {
            SyncRequest::LockAcquire { var }
            | SyncRequest::LockRelease { var }
            | SyncRequest::BarrierWait { var, .. }
            | SyncRequest::SemWait { var, .. }
            | SyncRequest::SemPost { var }
            | SyncRequest::CondWait { var, .. }
            | SyncRequest::CondSignal { var }
            | SyncRequest::CondBroadcast { var } => var,
        }
    }

    /// The primitive this request belongs to.
    pub fn primitive(&self) -> PrimitiveKind {
        match self {
            SyncRequest::LockAcquire { .. } | SyncRequest::LockRelease { .. } => {
                PrimitiveKind::Lock
            }
            SyncRequest::BarrierWait { .. } => PrimitiveKind::Barrier,
            SyncRequest::SemWait { .. } | SyncRequest::SemPost { .. } => PrimitiveKind::Semaphore,
            SyncRequest::CondWait { .. }
            | SyncRequest::CondSignal { .. }
            | SyncRequest::CondBroadcast { .. } => PrimitiveKind::CondVar,
        }
    }

    /// Whether the issuing core blocks until a response arrives.
    ///
    /// Acquire-type semantics use the blocking `req_sync` instruction; release-type
    /// semantics use `req_async`, which commits once the message is issued
    /// (Section 4.1.1 of the paper).
    pub fn is_blocking(&self) -> bool {
        match self {
            SyncRequest::LockAcquire { .. }
            | SyncRequest::BarrierWait { .. }
            | SyncRequest::SemWait { .. }
            | SyncRequest::CondWait { .. } => true,
            SyncRequest::LockRelease { .. }
            | SyncRequest::SemPost { .. }
            | SyncRequest::CondSignal { .. }
            | SyncRequest::CondBroadcast { .. } => false,
        }
    }

    /// Whether this request has acquire-type semantics (may add the core to a waiting
    /// list). Used by the indexing counters during ST overflow.
    pub fn is_acquire_type(&self) -> bool {
        self.is_blocking()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_classification_follows_paper() {
        let var = Addr(0x40);
        let lock = Addr(0x80);
        assert!(SyncRequest::LockAcquire { var }.is_blocking());
        assert!(!SyncRequest::LockRelease { var }.is_blocking());
        assert!(SyncRequest::BarrierWait {
            var,
            participants: 8,
            scope: BarrierScope::AcrossUnits
        }
        .is_blocking());
        assert!(SyncRequest::SemWait { var, initial: 2 }.is_blocking());
        assert!(!SyncRequest::SemPost { var }.is_blocking());
        assert!(SyncRequest::CondWait { var, lock }.is_blocking());
        assert!(!SyncRequest::CondSignal { var }.is_blocking());
        assert!(!SyncRequest::CondBroadcast { var }.is_blocking());
    }

    #[test]
    fn primitive_classification() {
        let var = Addr(0x40);
        assert_eq!(
            SyncRequest::LockAcquire { var }.primitive(),
            PrimitiveKind::Lock
        );
        assert_eq!(
            SyncRequest::BarrierWait {
                var,
                participants: 4,
                scope: BarrierScope::WithinUnit
            }
            .primitive(),
            PrimitiveKind::Barrier
        );
        assert_eq!(
            SyncRequest::SemPost { var }.primitive(),
            PrimitiveKind::Semaphore
        );
        assert_eq!(
            SyncRequest::CondBroadcast { var }.primitive(),
            PrimitiveKind::CondVar
        );
    }

    #[test]
    fn var_accessor_returns_target() {
        let var = Addr(0x1234);
        for req in [
            SyncRequest::LockAcquire { var },
            SyncRequest::LockRelease { var },
            SyncRequest::SemPost { var },
            SyncRequest::CondSignal { var },
        ] {
            assert_eq!(req.var(), var);
        }
    }

    #[test]
    fn primitive_names_are_distinct() {
        let names: Vec<&str> = PrimitiveKind::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
