//! The *Ideal* baseline: synchronization with zero performance overhead.
//!
//! Section 5 of the paper compares every scheme against "an ideal scheme with zero
//! performance overhead for synchronization". Semantics are still enforced — a lock
//! still admits only one holder and a barrier still waits for every participant — but
//! requests travel instantaneously, consume no energy and generate no traffic. The gap
//! between a real scheme and Ideal is exactly the synchronization overhead.
//!
//! Ideal mirrors the signal-coalescing semantics of [`crate::protocol`] whenever the
//! protocol schemes use them, so a sweep always compares identical primitive
//! semantics: with coalescing on (the default), a `cond_signal` that finds no queued
//! waiter is banked as a pending signal and consumed by a later `cond_wait` exactly
//! once — uncapped, since the zero-overhead upper bound never wastes a signal, and
//! without backoff NACKs, since wasted signals cost nothing here. With coalescing
//! off, Ideal drops no-waiter signals just like the real schemes do.

use crate::components::{ComponentTables, Grantee};
use crate::mechanism::{SyncContext, SyncMechanism, SyncMechanismStats};
use crate::request::SyncRequest;
use syncron_sim::time::Time;
use syncron_sim::{Addr, GlobalCoreId};

/// Zero-overhead synchronization mechanism.
///
/// Ideal keeps its per-variable state in the same shared
/// `ComponentTables` (crate-private, `components` module) the protocol
/// engines use — the master-side lock,
/// barrier, semaphore and condvar components, with every grantee an
/// individual core (there is no unit-level aggregation to speak of at zero
/// cost). Ideal never discards state (its maps only ever grew), so slots are
/// claimed on first touch and live for the run: one `addr → slot` probe per
/// request, dense column accesses after that.
#[derive(Debug)]
pub struct IdealMechanism {
    vars: ComponentTables,
    signal_coalescing: bool,
    stats: SyncMechanismStats,
}

impl Default for IdealMechanism {
    fn default() -> Self {
        IdealMechanism::new()
    }
}

impl IdealMechanism {
    /// Slots pre-allocated at construction; workloads with more concurrently
    /// live synchronization variables grow the arena on first touch only.
    const PRESIZE: usize = 64;

    /// Creates an idle mechanism with signal coalescing on (the protocol default).
    pub fn new() -> Self {
        IdealMechanism {
            vars: ComponentTables::with_capacity(IdealMechanism::PRESIZE),
            signal_coalescing: true,
            stats: SyncMechanismStats::default(),
        }
    }

    /// Enables or disables signal coalescing, matching the semantics the protocol
    /// schemes are configured with so sweeps stay apples-to-apples.
    pub fn with_signal_coalescing(mut self, enabled: bool) -> Self {
        self.signal_coalescing = enabled;
        self
    }

    /// The slot tracking `var`, claimed on first touch (never recycled: Ideal
    /// holds every variable it ever saw, so nothing is released).
    fn slot(&mut self, var: Addr) -> usize {
        self.vars.resolve(var) as usize
    }

    fn grant_lock(&mut self, ctx: &mut dyn SyncContext, slot: usize, core: GlobalCoreId) {
        let lock = self.vars.master_lock_mut(slot);
        debug_assert!(lock.owner.is_none());
        lock.owner = Some(Grantee::Core(core));
        self.stats.completions += 1;
        ctx.complete(core, ctx.now());
    }

    fn acquire_lock(&mut self, ctx: &mut dyn SyncContext, slot: usize, core: GlobalCoreId) {
        let lock = self.vars.master_lock_mut(slot);
        if lock.owner.is_some() {
            lock.waiting.push_back(Grantee::Core(core));
        } else {
            self.grant_lock(ctx, slot, core);
        }
    }

    fn release_lock(&mut self, ctx: &mut dyn SyncContext, slot: usize) {
        let lock = self.vars.master_lock_mut(slot);
        lock.owner = None;
        if let Some(Grantee::Core(next)) = lock.waiting.pop_front() {
            self.grant_lock(ctx, slot, next);
        }
    }
}

impl SyncMechanism for IdealMechanism {
    fn name(&self) -> &'static str {
        "Ideal"
    }

    fn request(&mut self, ctx: &mut dyn SyncContext, core: GlobalCoreId, req: SyncRequest) {
        self.stats.requests += 1;
        if req.is_acquire_type() {
            self.stats.acquire_requests += 1;
        }
        match req {
            SyncRequest::LockAcquire { var } => {
                let slot = self.slot(var);
                self.acquire_lock(ctx, slot, core);
            }
            SyncRequest::LockRelease { var } => {
                let slot = self.slot(var);
                self.release_lock(ctx, slot);
            }
            SyncRequest::BarrierWait {
                var, participants, ..
            } => {
                let slot = self.slot(var);
                let bar = self.vars.master_barrier_mut(slot);
                bar.arrived += 1;
                bar.direct_waiters.push(core);
                if bar.arrived >= participants {
                    bar.arrived = 0;
                    // The barrier state is left empty with its buffer retained.
                    // Every `ctx.complete` lands at the same timestamp, so the
                    // machine's burst-resume path coalesces this fan-out into
                    // one queued event per unit — the Ideal scheme needs no
                    // wake batching of its own.
                    for i in 0..bar.direct_waiters.len() {
                        let w = bar.direct_waiters[i];
                        self.stats.completions += 1;
                        ctx.complete(w, ctx.now());
                    }
                    bar.direct_waiters.clear();
                }
            }
            SyncRequest::SemWait { var, initial } => {
                let slot = self.slot(var);
                let sem = self.vars.master_sem_mut(slot);
                if !sem.initialized {
                    sem.initialized = true;
                    sem.count = i64::from(initial);
                }
                if sem.count > 0 {
                    sem.count -= 1;
                    self.stats.completions += 1;
                    ctx.complete(core, ctx.now());
                } else {
                    sem.waiters.push_back(core);
                }
            }
            SyncRequest::SemPost { var } => {
                let slot = self.slot(var);
                let sem = self.vars.master_sem_mut(slot);
                // First touch initializes (mirrors `crate::protocol`): a later
                // wait's `initial` must not clobber posts banked before it.
                sem.initialized = true;
                if let Some(next) = sem.waiters.pop_front() {
                    self.stats.completions += 1;
                    ctx.complete(next, ctx.now());
                } else {
                    sem.count += 1;
                }
            }
            SyncRequest::CondWait { var, lock } => {
                let slot = self.slot(var);
                let cond = self.vars.master_cond_mut(slot);
                if self.signal_coalescing && cond.pending > 0 {
                    // Consume one banked signal: the wait returns immediately, the
                    // core keeps holding the associated lock.
                    cond.pending -= 1;
                    self.stats.consumed_signals += 1;
                    self.stats.completions += 1;
                    ctx.complete(core, ctx.now());
                } else {
                    cond.waiters.push_back((core, lock));
                    let lock_slot = self.slot(lock);
                    self.release_lock(ctx, lock_slot);
                }
            }
            SyncRequest::CondSignal { var } => {
                let slot = self.slot(var);
                let cond = self.vars.master_cond_mut(slot);
                if let Some((w, lock)) = cond.waiters.pop_front() {
                    // The woken core re-acquires the associated lock; its cond_wait
                    // completes when the lock is granted.
                    self.stats.delivered_signals += 1;
                    let lock_slot = self.slot(lock);
                    self.acquire_lock(ctx, lock_slot, w);
                } else if self.signal_coalescing {
                    // Uncapped pending count: the u64 component never saturates
                    // in practice and the bound never wastes a signal.
                    cond.pending = cond.pending.saturating_add(1);
                    let pending = cond.pending;
                    self.stats.coalesced_signals += 1;
                    self.stats.max_pending_signals = self.stats.max_pending_signals.max(pending);
                }
            }
            SyncRequest::CondBroadcast { var } => {
                let slot = self.slot(var);
                // Waking a waiter re-acquires its lock through `self`, so pop
                // one at a time instead of holding a borrow of the waiter queue.
                while let Some((w, lock)) = self.vars.master_cond_mut(slot).waiters.pop_front() {
                    let lock_slot = self.slot(lock);
                    self.acquire_lock(ctx, lock_slot, w);
                }
            }
        }
    }

    fn deliver(&mut self, _ctx: &mut dyn SyncContext, _token: u64) {
        // The ideal mechanism never schedules events.
    }

    fn stats(&self, _end: Time) -> SyncMechanismStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::BarrierScope;
    use syncron_sim::{CoreId, UnitId};

    /// A minimal context for unit-testing mechanisms in isolation.
    #[derive(Debug, Default)]
    pub(crate) struct TestCtx {
        pub now: Time,
        pub completed: Vec<(GlobalCoreId, Time)>,
        pub scheduled: Vec<(Time, u64)>,
    }

    impl SyncContext for TestCtx {
        fn now(&self) -> Time {
            self.now
        }
        fn schedule(&mut self, at: Time, _unit: UnitId, token: u64) {
            self.scheduled.push((at, token));
        }
        fn local_hop(&mut self, _unit: UnitId, _bytes: u64) -> Time {
            Time::from_ns(2)
        }
        fn send_remote(
            &mut self,
            _at: Time,
            _from: UnitId,
            _to: UnitId,
            _bytes: u64,
            payload: crate::mechanism::RemotePayload,
        ) {
            panic!("the ideal mechanism never sends remote payloads: {payload:?}");
        }
        fn recv_hop(&mut self, _unit: UnitId, _bytes: u64) -> Time {
            Time::ZERO
        }
        fn sync_mem_access(
            &mut self,
            _unit: UnitId,
            _addr: Addr,
            _write: bool,
            _cached: bool,
        ) -> Time {
            Time::from_ns(20)
        }
        fn home_unit(&self, addr: Addr) -> UnitId {
            UnitId(((addr.value() >> 20) % 4) as u8)
        }
        fn complete(&mut self, core: GlobalCoreId, at: Time) {
            self.completed.push((core, at));
        }
        fn units(&self) -> usize {
            4
        }
        fn cores_per_unit(&self) -> usize {
            16
        }
    }

    fn core(u: u8, c: u8) -> GlobalCoreId {
        GlobalCoreId::new(UnitId(u), CoreId(c))
    }

    #[test]
    fn lock_is_mutually_exclusive_and_fifo() {
        let mut m = IdealMechanism::new();
        let mut ctx = TestCtx::default();
        let var = Addr(0x40);
        m.request(&mut ctx, core(0, 0), SyncRequest::LockAcquire { var });
        m.request(&mut ctx, core(0, 1), SyncRequest::LockAcquire { var });
        m.request(&mut ctx, core(1, 0), SyncRequest::LockAcquire { var });
        assert_eq!(ctx.completed.len(), 1);
        assert_eq!(ctx.completed[0].0, core(0, 0));
        m.request(&mut ctx, core(0, 0), SyncRequest::LockRelease { var });
        assert_eq!(ctx.completed.len(), 2);
        assert_eq!(ctx.completed[1].0, core(0, 1));
        m.request(&mut ctx, core(0, 1), SyncRequest::LockRelease { var });
        m.request(&mut ctx, core(1, 0), SyncRequest::LockRelease { var });
        assert_eq!(ctx.completed.len(), 3);
        assert_eq!(ctx.completed[2].0, core(1, 0));
    }

    #[test]
    fn lock_completion_has_zero_latency() {
        let mut m = IdealMechanism::new();
        let mut ctx = TestCtx {
            now: Time::from_us(3),
            ..Default::default()
        };
        m.request(
            &mut ctx,
            core(0, 0),
            SyncRequest::LockAcquire { var: Addr(0x80) },
        );
        assert_eq!(ctx.completed[0].1, Time::from_us(3));
    }

    #[test]
    fn barrier_releases_all_at_once() {
        let mut m = IdealMechanism::new();
        let mut ctx = TestCtx::default();
        let var = Addr(0x100);
        for i in 0..7 {
            m.request(
                &mut ctx,
                core(i / 4, i % 4),
                SyncRequest::BarrierWait {
                    var,
                    participants: 8,
                    scope: BarrierScope::AcrossUnits,
                },
            );
            assert!(ctx.completed.is_empty());
        }
        m.request(
            &mut ctx,
            core(1, 3),
            SyncRequest::BarrierWait {
                var,
                participants: 8,
                scope: BarrierScope::AcrossUnits,
            },
        );
        assert_eq!(ctx.completed.len(), 8);
    }

    #[test]
    fn barrier_is_reusable_after_release() {
        let mut m = IdealMechanism::new();
        let mut ctx = TestCtx::default();
        let var = Addr(0x100);
        for round in 0..3 {
            for i in 0..4 {
                m.request(
                    &mut ctx,
                    core(0, i),
                    SyncRequest::BarrierWait {
                        var,
                        participants: 4,
                        scope: BarrierScope::WithinUnit,
                    },
                );
            }
            assert_eq!(ctx.completed.len(), 4 * (round + 1));
        }
    }

    #[test]
    fn semaphore_counts_resources() {
        let mut m = IdealMechanism::new();
        let mut ctx = TestCtx::default();
        let var = Addr(0x200);
        // Two resources: first two waits succeed, third blocks until a post.
        m.request(
            &mut ctx,
            core(0, 0),
            SyncRequest::SemWait { var, initial: 2 },
        );
        m.request(
            &mut ctx,
            core(0, 1),
            SyncRequest::SemWait { var, initial: 2 },
        );
        m.request(
            &mut ctx,
            core(0, 2),
            SyncRequest::SemWait { var, initial: 2 },
        );
        assert_eq!(ctx.completed.len(), 2);
        m.request(&mut ctx, core(0, 0), SyncRequest::SemPost { var });
        assert_eq!(ctx.completed.len(), 3);
        assert_eq!(ctx.completed[2].0, core(0, 2));
    }

    #[test]
    fn condvar_signal_wakes_one_and_reacquires_lock() {
        let mut m = IdealMechanism::new();
        let mut ctx = TestCtx::default();
        let cond = Addr(0x300);
        let lock = Addr(0x340);
        // Core 0 takes the lock then waits on the condition variable.
        m.request(&mut ctx, core(0, 0), SyncRequest::LockAcquire { var: lock });
        assert_eq!(ctx.completed.len(), 1);
        m.request(
            &mut ctx,
            core(0, 0),
            SyncRequest::CondWait { var: cond, lock },
        );
        // cond_wait released the lock, so another core can take it.
        m.request(&mut ctx, core(0, 1), SyncRequest::LockAcquire { var: lock });
        assert_eq!(ctx.completed.len(), 2);
        // Signal: core 0 must wait for the lock (held by core 1).
        m.request(&mut ctx, core(0, 1), SyncRequest::CondSignal { var: cond });
        assert_eq!(ctx.completed.len(), 2);
        m.request(&mut ctx, core(0, 1), SyncRequest::LockRelease { var: lock });
        // Now core 0's cond_wait completes (it re-acquired the lock).
        assert_eq!(ctx.completed.len(), 3);
        assert_eq!(ctx.completed[2].0, core(0, 0));
    }

    #[test]
    fn condvar_banks_pending_signals_each_consumed_once() {
        let mut m = IdealMechanism::new();
        let mut ctx = TestCtx::default();
        let cond = Addr(0x300);
        let lock = Addr(0x340);
        // Two signals with no waiter are both banked.
        m.request(&mut ctx, core(1, 0), SyncRequest::CondSignal { var: cond });
        m.request(&mut ctx, core(1, 0), SyncRequest::CondSignal { var: cond });
        // The next two waits each consume one banked signal and return immediately.
        for c in 0..2 {
            m.request(&mut ctx, core(0, c), SyncRequest::LockAcquire { var: lock });
            m.request(
                &mut ctx,
                core(0, c),
                SyncRequest::CondWait { var: cond, lock },
            );
            m.request(&mut ctx, core(0, c), SyncRequest::LockRelease { var: lock });
        }
        assert_eq!(ctx.completed.len(), 4, "both waits returned immediately");
        // A third wait blocks: each signal was consumed exactly once.
        m.request(&mut ctx, core(0, 2), SyncRequest::LockAcquire { var: lock });
        m.request(
            &mut ctx,
            core(0, 2),
            SyncRequest::CondWait { var: cond, lock },
        );
        assert_eq!(ctx.completed.len(), 5, "only the lock acquire completed");
        let s = m.stats(Time::ZERO);
        assert_eq!(s.coalesced_signals, 2);
        assert_eq!(s.consumed_signals, 2);
    }

    #[test]
    fn coalescing_off_drops_no_waiter_signals() {
        // With the knob off, Ideal matches the protocol schemes' restored
        // fire-and-forget semantics: a signal with no waiter is lost.
        let mut m = IdealMechanism::new().with_signal_coalescing(false);
        let mut ctx = TestCtx::default();
        let cond = Addr(0x300);
        let lock = Addr(0x340);
        m.request(&mut ctx, core(1, 0), SyncRequest::CondSignal { var: cond });
        m.request(&mut ctx, core(0, 0), SyncRequest::LockAcquire { var: lock });
        m.request(
            &mut ctx,
            core(0, 0),
            SyncRequest::CondWait { var: cond, lock },
        );
        assert_eq!(ctx.completed.len(), 1, "the wait must block");
        let s = m.stats(Time::ZERO);
        assert_eq!(s.coalesced_signals, 0);
        // A real signal still wakes the waiter.
        m.request(&mut ctx, core(1, 0), SyncRequest::CondSignal { var: cond });
        assert_eq!(ctx.completed.len(), 2);
        assert_eq!(m.stats(Time::ZERO).delivered_signals, 1);
    }

    #[test]
    fn condvar_broadcast_wakes_all() {
        let mut m = IdealMechanism::new();
        let mut ctx = TestCtx::default();
        let cond = Addr(0x400);
        let lock = Addr(0x440);
        for i in 0..3 {
            m.request(&mut ctx, core(0, i), SyncRequest::LockAcquire { var: lock });
            m.request(
                &mut ctx,
                core(0, i),
                SyncRequest::CondWait { var: cond, lock },
            );
        }
        assert_eq!(ctx.completed.len(), 3); // the three lock acquisitions
        m.request(
            &mut ctx,
            core(1, 0),
            SyncRequest::CondBroadcast { var: cond },
        );
        // All three waiters re-acquire the lock one after another as it is released.
        assert_eq!(ctx.completed.len(), 4);
        let fourth = ctx.completed[3].0;
        m.request(&mut ctx, fourth, SyncRequest::LockRelease { var: lock });
        assert_eq!(ctx.completed.len(), 5);
        let fifth = ctx.completed[4].0;
        m.request(&mut ctx, fifth, SyncRequest::LockRelease { var: lock });
        assert_eq!(ctx.completed.len(), 6);
    }

    #[test]
    fn stats_count_requests_and_completions() {
        let mut m = IdealMechanism::new();
        let mut ctx = TestCtx::default();
        let var = Addr(0x40);
        m.request(&mut ctx, core(0, 0), SyncRequest::LockAcquire { var });
        m.request(&mut ctx, core(0, 0), SyncRequest::LockRelease { var });
        let s = m.stats(Time::from_ns(10));
        assert_eq!(s.requests, 2);
        assert_eq!(s.completions, 1);
        assert_eq!(s.acquire_requests, 1);
        assert_eq!(s.local_messages, 0);
        assert_eq!(s.global_messages, 0);
        assert_eq!(s.mem_accesses, 0);
    }
}
