//! Conservative-PDES building blocks: shard partitioning, per-shard event keys,
//! cross-shard mailboxes and the window barrier.
//!
//! A partitioned simulation splits its state into `shards` that each own a
//! contiguous range of units and advance in **bounded time windows**: every
//! round, the shards agree on the global minimum pending timestamp `T_min` and
//! each processes only events strictly before `T_min + lookahead`, where the
//! lookahead is the guaranteed minimum latency of any cross-shard interaction.
//! Any message generated during the window is timestamped at or after its send
//! time plus the lookahead, hence at or after the window end — so no shard can
//! ever receive a message for a point in time it has already passed. Cross-shard
//! messages travel through [`mailboxes`] and are drained between the two phases
//! of the [`WindowGate`] round, so a freshly received message always takes part
//! in the next window computation.
//!
//! Equal-timestamp determinism across shard counts comes from [`event_key`]:
//! every event carries a `(origin unit, per-unit counter)` key used as the
//! queue tiebreak, so the pop order within a timestamp is a property of the
//! simulation, not of which host thread pushed first.

use crate::time::Time;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex};

/// Number of low bits of an event key reserved for the per-unit counter.
pub const KEY_COUNTER_BITS: u32 = 48;

/// Builds the stable equal-timestamp tiebreak key for an event originated by
/// `unit` as its `counter`-th push.
///
/// Keys order first by originating unit, then by that unit's push counter, so
/// the interleaving of events from different units at one timestamp is fixed by
/// the simulation itself and identical under any sharding. The 48-bit counter
/// space (~2.8 · 10^14 pushes per unit) is far beyond any event budget.
///
/// # Panics
///
/// Panics if the counter overflows its 48-bit field (a runaway simulation; the
/// event budget aborts runs orders of magnitude earlier).
#[inline]
pub fn event_key(unit: usize, counter: u64) -> u64 {
    assert!(
        counter < (1u64 << KEY_COUNTER_BITS),
        "event key counter overflow for unit {unit}"
    );
    ((unit as u64) << KEY_COUNTER_BITS) | counter
}

/// A contiguous partition of `units` simulation units into `shards` shards.
///
/// Units are assigned in order, balanced to within one unit per shard. The map
/// answers `unit -> shard` in O(1) and the owned range of each shard.
#[derive(Clone, Debug)]
pub struct ShardMap {
    units: usize,
    /// `starts[s]..starts[s + 1]` is the unit range owned by shard `s`.
    starts: Vec<usize>,
    /// Dense `unit -> shard` table.
    owner: Vec<u32>,
}

impl ShardMap {
    /// Partitions `units` units into `min(shards, units)` contiguous shards.
    ///
    /// # Panics
    ///
    /// Panics if `units` or `shards` is zero.
    pub fn new(units: usize, shards: usize) -> Self {
        assert!(units > 0, "cannot partition zero units");
        assert!(shards > 0, "cannot partition into zero shards");
        let shards = shards.min(units);
        let base = units / shards;
        let extra = units % shards;
        let mut starts = Vec::with_capacity(shards + 1);
        let mut owner = vec![0u32; units];
        let mut unit = 0usize;
        for s in 0..shards {
            starts.push(unit);
            let len = base + usize::from(s < extra);
            for slot in &mut owner[unit..unit + len] {
                *slot = s as u32;
            }
            unit += len;
        }
        starts.push(units);
        ShardMap {
            units,
            starts,
            owner,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// Number of units partitioned.
    pub fn units(&self) -> usize {
        self.units
    }

    /// The shard owning `unit`.
    ///
    /// # Panics
    ///
    /// Panics — naming the unit — when `unit` is outside the partitioned
    /// geometry. An out-of-range unit in a routed message is always a bug in the
    /// sender; dropping it silently would strand the simulation.
    #[inline]
    pub fn shard_of(&self, unit: usize) -> usize {
        match self.owner.get(unit) {
            Some(&s) => s as usize,
            None => panic!(
                "message routed to unit U{unit}, which is outside the sharded \
                 geometry of {} units: no shard owns it",
                self.units
            ),
        }
    }

    /// The contiguous unit range owned by `shard`.
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        self.starts[shard]..self.starts[shard + 1]
    }
}

/// One cross-shard message: `(arrival time, event key, payload)`.
pub type Mail<E> = (Time, u64, E);

/// Builds the all-to-all mailbox fabric for `shards` shards.
///
/// Returns, for every shard, its receiving endpoint and one sender per peer
/// shard (`senders[s][d]` sends from shard `s` to shard `d`; the self-slot is
/// present for uniform indexing but a shard normally pushes straight into its
/// own queue instead).
#[allow(clippy::type_complexity)]
pub fn mailboxes<E>(shards: usize) -> (Vec<Vec<Sender<Mail<E>>>>, Vec<Receiver<Mail<E>>>) {
    let mut txs: Vec<Vec<Sender<Mail<E>>>> = (0..shards).map(|_| Vec::new()).collect();
    let mut rxs = Vec::with_capacity(shards);
    for _dest in 0..shards {
        let (tx, rx) = channel();
        for row in txs.iter_mut() {
            row.push(tx.clone());
        }
        rxs.push(rx);
    }
    (txs, rxs)
}

/// What one shard reports at the end of a window round.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundReport {
    /// Earliest pending local event (after draining the mailbox), if any.
    pub local_min: Option<Time>,
    /// Events this shard delivered since its previous report.
    pub events_delta: u64,
    /// Core programs that finished since the previous report.
    pub done_delta: u64,
    /// Forward-progress units (program actions consumed by cores) since the
    /// previous report — the liveness watchdog's signal. Events that circulate
    /// without any core advancing (e.g. a retransmission storm) leave this at
    /// zero, which is exactly the no-progress condition the watchdog detects.
    pub progress_delta: u64,
}

/// Why the gate stopped a run before completion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbortCause {
    /// The global event budget is exhausted.
    Budget,
    /// The liveness watchdog fired: more than the configured number of events
    /// were delivered without any core making forward progress.
    Stall,
}

/// The gate's verdict for the next window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoundDecision {
    /// Process every event strictly before `window_end`, then come back.
    Continue {
        /// Exclusive upper bound of the next window (`T_min + lookahead`).
        window_end: Time,
    },
    /// Every queue and mailbox is empty: the simulation is over.
    Finished,
    /// The run stops at this boundary; all shards observe the same cause.
    Aborted {
        /// Why the run was stopped.
        cause: AbortCause,
    },
}

struct GateState {
    arrived: usize,
    generation: u64,
    round_min: Option<Time>,
    events_total: u64,
    done_total: u64,
    /// Progress units reported in the current round (reset every round).
    round_progress: u64,
    /// `events_total` as of the last round that reported any progress.
    events_at_progress: u64,
    decision: RoundDecision,
}

/// The two-phase window barrier of a sharded run.
///
/// Every round, each shard:
///
/// 1. calls [`WindowGate::arrive`] after processing its window — once it
///    returns, every cross-shard send of the finished window is visible in the
///    destination mailboxes (the barrier's lock ordering is the happens-before
///    edge);
/// 2. drains its mailbox into its local queue;
/// 3. calls [`WindowGate::resolve`] with its new local minimum — the last
///    arriver reduces the reports into the next [`RoundDecision`], which every
///    shard observes identically.
///
/// A shard whose queue has drained keeps participating with `local_min: None`
/// until the gate answers [`RoundDecision::Finished`], so window advancement
/// never deadlocks on an idle shard.
///
/// Windows are short — often a few microseconds of host work — so waiters
/// first spin on a lock-free generation counter before falling back to the
/// condvar; a blocking wakeup per phase would otherwise dominate the run.
pub struct WindowGate {
    parties: usize,
    lookahead: Time,
    max_events: u64,
    /// Liveness watchdog: abort once this many events are delivered without
    /// any shard reporting progress (`0` disables the watchdog).
    watchdog_limit: u64,
    /// Lock-free mirror of [`GateState::generation`], bumped by the last
    /// arriver of each phase (while holding the lock, so the two never
    /// disagree for a blocked waiter). Spun on by the fast wait path.
    generation: AtomicU64,
    /// Spin iterations before a waiter blocks: [`GATE_SPIN_ITERS`] when the
    /// host can run every party on its own CPU, `0` otherwise — on an
    /// oversubscribed host a spinner burns exactly the timeslice the working
    /// shard needs, inverting the optimization.
    spin_iters: u32,
    state: Mutex<GateState>,
    cv: Condvar,
}

/// Spin iterations before a gate waiter falls back to blocking on the condvar.
/// Sized to cover a typical window's worth of host work (a few microseconds);
/// an imbalanced or descheduled peer parks the waiter instead of burning CPU.
const GATE_SPIN_ITERS: u32 = 20_000;

impl std::fmt::Debug for WindowGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowGate")
            .field("parties", &self.parties)
            .field("lookahead", &self.lookahead)
            .finish()
    }
}

impl WindowGate {
    /// Creates a gate for `parties` shards with the given lookahead, global
    /// event budget and liveness-watchdog limit (`0` disables the watchdog:
    /// runs then only stop on completion or budget exhaustion).
    pub fn new(parties: usize, lookahead: Time, max_events: u64, watchdog_limit: u64) -> Self {
        assert!(parties > 0, "a window gate needs at least one shard");
        WindowGate {
            parties,
            lookahead,
            max_events,
            watchdog_limit,
            generation: AtomicU64::new(0),
            spin_iters: if std::thread::available_parallelism().map_or(1, |n| n.get()) >= parties {
                GATE_SPIN_ITERS
            } else {
                0
            },
            state: Mutex::new(GateState {
                arrived: 0,
                generation: 0,
                round_min: None,
                events_total: 0,
                done_total: 0,
                round_progress: 0,
                events_at_progress: 0,
                decision: RoundDecision::Finished,
            }),
            cv: Condvar::new(),
        }
    }

    /// The lookahead the gate derives window bounds from.
    pub fn lookahead(&self) -> Time {
        self.lookahead
    }

    fn phase(&self, on_last: impl FnOnce(&mut GateState)) {
        let gen = {
            let mut g = self.state.lock().expect("window gate poisoned");
            g.arrived += 1;
            if g.arrived == self.parties {
                g.arrived = 0;
                on_last(&mut g);
                g.generation += 1;
                // Publish while still holding the lock so a blocked waiter
                // never observes the atomic ahead of the guarded state.
                self.generation.store(g.generation, Ordering::Release);
                drop(g);
                self.cv.notify_all();
                return;
            }
            g.generation
        };
        // Fast path: the peers are mid-window; their arrival is typically
        // microseconds away. The Acquire load pairs with the last arriver's
        // Release store, so everything it reduced is visible on return.
        for _ in 0..self.spin_iters {
            if self.generation.load(Ordering::Acquire) != gen {
                return;
            }
            std::hint::spin_loop();
        }
        let mut g = self.state.lock().expect("window gate poisoned");
        while g.generation == gen {
            g = self.cv.wait(g).expect("window gate poisoned");
        }
    }

    /// Phase 1: marks this shard's window as fully processed (all sends done).
    pub fn arrive(&self) {
        self.phase(|_| {});
    }

    /// Phase 2: submits this shard's round report and returns the decision for
    /// the next window (identical for every shard of the round).
    pub fn resolve(&self, report: RoundReport) -> RoundDecision {
        let lookahead = self.lookahead;
        let max_events = self.max_events;
        let watchdog_limit = self.watchdog_limit;
        {
            let mut g = self.state.lock().expect("window gate poisoned");
            g.round_min = match (g.round_min, report.local_min) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            g.events_total += report.events_delta;
            g.done_total += report.done_delta;
            // A finished core is forward progress too: a run in its final
            // drain delivers events while no remaining core steps.
            g.round_progress += report.progress_delta + report.done_delta;
        }
        self.phase(|g| {
            if g.round_progress > 0 {
                g.events_at_progress = g.events_total;
                g.round_progress = 0;
            }
            g.decision = if g.events_total > max_events {
                RoundDecision::Aborted {
                    cause: AbortCause::Budget,
                }
            } else if watchdog_limit > 0
                && g.events_total.saturating_sub(g.events_at_progress) > watchdog_limit
            {
                RoundDecision::Aborted {
                    cause: AbortCause::Stall,
                }
            } else {
                match g.round_min.take() {
                    None => RoundDecision::Finished,
                    Some(min) => RoundDecision::Continue {
                        window_end: Time::from_ps(min.as_ps().saturating_add(lookahead.as_ps())),
                    },
                }
            };
            g.round_min = None;
        });
        self.state.lock().expect("window gate poisoned").decision
    }

    /// Total core programs reported done across all shards and rounds so far.
    pub fn done_total(&self) -> u64 {
        self.state.lock().expect("window gate poisoned").done_total
    }

    /// Total events reported delivered across all shards and rounds so far.
    pub fn events_total(&self) -> u64 {
        self.state
            .lock()
            .expect("window gate poisoned")
            .events_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_balances_contiguously() {
        let map = ShardMap::new(10, 4);
        assert_eq!(map.shards(), 4);
        assert_eq!(map.range(0), 0..3);
        assert_eq!(map.range(1), 3..6);
        assert_eq!(map.range(2), 6..8);
        assert_eq!(map.range(3), 8..10);
        for u in 0..10 {
            let s = map.shard_of(u);
            assert!(map.range(s).contains(&u), "unit {u} not in its shard range");
        }
    }

    #[test]
    fn shard_map_clamps_to_unit_count() {
        let map = ShardMap::new(3, 8);
        assert_eq!(map.shards(), 3);
        for u in 0..3 {
            assert_eq!(map.range(map.shard_of(u)).len(), 1);
        }
    }

    #[test]
    fn unknown_unit_is_a_hard_error_naming_the_unit() {
        let map = ShardMap::new(4, 2);
        let err = std::panic::catch_unwind(|| map.shard_of(7)).unwrap_err();
        let msg = *err.downcast::<String>().unwrap();
        assert!(msg.contains("U7"), "panic must name the unit: {msg}");
        assert!(
            msg.contains("4 units"),
            "panic must name the geometry: {msg}"
        );
    }

    #[test]
    fn event_keys_order_by_unit_then_counter() {
        assert!(event_key(0, 5) < event_key(1, 0));
        assert!(event_key(3, 7) < event_key(3, 8));
        assert_eq!(event_key(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "counter overflow")]
    fn event_key_counter_overflow_panics() {
        event_key(1, 1u64 << KEY_COUNTER_BITS);
    }

    #[test]
    fn mailboxes_deliver_across_threads() {
        let (txs, rxs) = mailboxes::<u32>(2);
        let mut rxs = rxs.into_iter();
        let rx0 = rxs.next().unwrap();
        let _rx1 = rxs.next().unwrap();
        let tx = txs[1][0].clone();
        std::thread::spawn(move || {
            tx.send((Time::from_ns(3), 42, 7)).unwrap();
        })
        .join()
        .unwrap();
        assert_eq!(rx0.try_recv().unwrap(), (Time::from_ns(3), 42, 7));
    }

    #[test]
    fn gate_single_party_reduces_immediately() {
        let gate = WindowGate::new(1, Time::from_ns(40), 1_000, 0);
        gate.arrive();
        let d = gate.resolve(RoundReport {
            local_min: Some(Time::from_ns(10)),
            events_delta: 5,
            done_delta: 0,
            progress_delta: 5,
        });
        assert_eq!(
            d,
            RoundDecision::Continue {
                window_end: Time::from_ns(50)
            }
        );
        gate.arrive();
        assert_eq!(
            gate.resolve(RoundReport::default()),
            RoundDecision::Finished
        );
        assert_eq!(gate.events_total(), 5);
    }

    #[test]
    fn gate_aborts_when_budget_exhausted() {
        let gate = WindowGate::new(1, Time::from_ns(1), 10, 0);
        gate.arrive();
        let d = gate.resolve(RoundReport {
            local_min: Some(Time::ZERO),
            events_delta: 11,
            done_delta: 0,
            progress_delta: 11,
        });
        assert_eq!(
            d,
            RoundDecision::Aborted {
                cause: AbortCause::Budget
            }
        );
    }

    #[test]
    fn gate_watchdog_aborts_on_no_progress_and_resets_on_progress() {
        // Limit 20: rounds that deliver events with zero progress accumulate
        // toward the watchdog; a single progress report resets the window.
        let gate = WindowGate::new(1, Time::from_ns(1), u64::MAX, 20);
        let stalled_round = RoundReport {
            local_min: Some(Time::ZERO),
            events_delta: 9,
            done_delta: 0,
            progress_delta: 0,
        };
        gate.arrive();
        assert!(matches!(
            gate.resolve(stalled_round),
            RoundDecision::Continue { .. }
        ));
        gate.arrive();
        assert!(matches!(
            gate.resolve(stalled_round),
            RoundDecision::Continue { .. }
        ));
        // 27 events without progress — but this round reports progress, so the
        // watchdog window restarts instead of firing.
        gate.arrive();
        assert!(matches!(
            gate.resolve(RoundReport {
                progress_delta: 1,
                ..stalled_round
            }),
            RoundDecision::Continue { .. }
        ));
        // Now stall for real: 18 events (no fire) then 9 more (fire).
        gate.arrive();
        assert!(matches!(
            gate.resolve(RoundReport {
                events_delta: 18,
                ..stalled_round
            }),
            RoundDecision::Continue { .. }
        ));
        gate.arrive();
        assert_eq!(
            gate.resolve(stalled_round),
            RoundDecision::Aborted {
                cause: AbortCause::Stall
            }
        );
    }

    #[test]
    fn gate_watchdog_counts_done_cores_as_progress() {
        let gate = WindowGate::new(1, Time::from_ns(1), u64::MAX, 10);
        gate.arrive();
        // 25 events, no core stepped, but cores finished: the final drain of a
        // completing run must never trip the watchdog.
        assert!(matches!(
            gate.resolve(RoundReport {
                local_min: Some(Time::ZERO),
                events_delta: 25,
                done_delta: 2,
                progress_delta: 0,
            }),
            RoundDecision::Continue { .. }
        ));
    }

    #[test]
    fn gate_reduces_min_across_threads() {
        // Four shards, several rounds: every shard must observe the same
        // decision, derived from the global minimum.
        let shards = 4;
        let gate = std::sync::Arc::new(WindowGate::new(shards, Time::from_ns(40), u64::MAX, 0));
        let mut handles = Vec::new();
        for s in 0..shards {
            let gate = std::sync::Arc::clone(&gate);
            handles.push(std::thread::spawn(move || {
                let mut decisions = Vec::new();
                for round in 0..3u64 {
                    gate.arrive();
                    // Shard s pretends its earliest event is at (round*100 + s) ns;
                    // the global min each round is shard 0's.
                    let min = (round == 0 || s != 3).then(|| Time::from_ns(round * 100 + s as u64));
                    decisions.push(gate.resolve(RoundReport {
                        local_min: min,
                        events_delta: 1,
                        done_delta: 0,
                        progress_delta: 1,
                    }));
                }
                gate.arrive();
                decisions.push(gate.resolve(RoundReport::default()));
                decisions
            }));
        }
        let all: Vec<Vec<RoundDecision>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for other in &all[1..] {
            assert_eq!(&all[0], other, "shards observed different decisions");
        }
        for (round, d) in all[0][..3].iter().enumerate() {
            assert_eq!(
                *d,
                RoundDecision::Continue {
                    window_end: Time::from_ns(round as u64 * 100 + 40)
                }
            );
        }
        assert_eq!(all[0][3], RoundDecision::Finished);
        assert_eq!(gate.events_total(), 12);
    }
}
