//! DRAM timing and energy models.
//!
//! The paper evaluates three NDP configurations (Section 6.5):
//!
//! * **2.5D NDP** — HBM 1.0, 4 GB per stack, 500 MHz, 8 channels,
//!   `nRCDR/nRCDW/nRAS/nWR = 7/6/17/8 ns`, 7 pJ/bit;
//! * **3D NDP** — HMC 2.1, 1250 MHz, 32 vaults per stack, `nRCD/nRAS/nWR = 17/34/19 ns`;
//! * **2D NDP** — DDR4-2400, 4 DIMMs, `nRCD/nRAS/nWR = 16/39/18 ns`.
//!
//! The model is a bank-level open-row model: each bank tracks its open row and is a
//! serial resource, so bank conflicts and row misses produce the latency (and therefore
//! contention) differences that drive the paper's memory-technology sensitivity study
//! (Figure 18).

use syncron_sim::queueing::Serializer;
use syncron_sim::stats::Counter;
use syncron_sim::time::Time;
use syncron_sim::Addr;

/// The memory technology attached to each NDP unit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MemTech {
    /// High-Bandwidth Memory (the paper's default, 2.5D NDP configuration).
    #[default]
    Hbm,
    /// Hybrid Memory Cube (3D NDP configuration).
    Hmc,
    /// DDR4 DIMMs (2D NDP configuration).
    Ddr4,
}

impl MemTech {
    /// All technologies, in the order the paper presents them.
    pub const ALL: [MemTech; 3] = [MemTech::Hbm, MemTech::Hmc, MemTech::Ddr4];

    /// Short lower-case name used in reports ("hbm", "hmc", "ddr4").
    pub fn name(self) -> &'static str {
        match self {
            MemTech::Hbm => "hbm",
            MemTech::Hmc => "hmc",
            MemTech::Ddr4 => "ddr4",
        }
    }
}

impl std::fmt::Display for MemTech {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Timing and energy parameters of one NDP unit's DRAM device.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DramSpec {
    /// Technology this spec describes.
    pub tech: MemTech,
    /// Number of independently-schedulable banks (channels × banks or vaults).
    pub banks: usize,
    /// Row-to-column delay for reads (activate → read).
    pub t_rcd_read: Time,
    /// Row-to-column delay for writes (activate → write).
    pub t_rcd_write: Time,
    /// Column access latency (CAS) plus data burst.
    pub t_cas: Time,
    /// Row precharge latency (needed before activating a different row).
    pub t_rp: Time,
    /// Minimum row-active time; bounds how long a bank stays busy per activation.
    pub t_ras: Time,
    /// Write recovery time.
    pub t_wr: Time,
    /// Row-buffer size per bank, in bytes.
    pub row_bytes: u64,
    /// Energy per transferred bit, in picojoules.
    pub pj_per_bit: f64,
}

impl DramSpec {
    /// HBM 1.0 parameters (Table 5: 500 MHz, 8 channels, 7/6/17/8 ns, 7 pJ/bit).
    pub fn hbm() -> Self {
        DramSpec {
            tech: MemTech::Hbm,
            banks: 8 * 4, // 8 channels x 4 banks each
            t_rcd_read: Time::from_ns(7),
            t_rcd_write: Time::from_ns(6),
            t_cas: Time::from_ns(7),
            t_rp: Time::from_ns(7),
            t_ras: Time::from_ns(17),
            t_wr: Time::from_ns(8),
            row_bytes: 2048,
            pj_per_bit: 7.0,
        }
    }

    /// HMC 2.1 parameters (Table 5: 1250 MHz, 32 vaults, 17/34/19 ns).
    pub fn hmc() -> Self {
        DramSpec {
            tech: MemTech::Hmc,
            banks: 32, // one scheduling queue per vault
            t_rcd_read: Time::from_ns(17),
            t_rcd_write: Time::from_ns(17),
            t_cas: Time::from_ns(10),
            t_rp: Time::from_ns(13),
            t_ras: Time::from_ns(34),
            t_wr: Time::from_ns(19),
            row_bytes: 256,
            pj_per_bit: 9.0,
        }
    }

    /// DDR4-2400 parameters (Table 5: 4 DIMMs, 16/39/18 ns).
    pub fn ddr4() -> Self {
        DramSpec {
            tech: MemTech::Ddr4,
            banks: 16, // 4 DIMMs x 4 bank groups
            t_rcd_read: Time::from_ns(16),
            t_rcd_write: Time::from_ns(16),
            t_cas: Time::from_ns(14),
            t_rp: Time::from_ns(16),
            t_ras: Time::from_ns(39),
            t_wr: Time::from_ns(18),
            row_bytes: 8192,
            pj_per_bit: 20.0,
        }
    }

    /// Returns the spec for a technology.
    pub fn for_tech(tech: MemTech) -> Self {
        match tech {
            MemTech::Hbm => Self::hbm(),
            MemTech::Hmc => Self::hmc(),
            MemTech::Ddr4 => Self::ddr4(),
        }
    }

    /// Unloaded (row-miss, idle-bank) read latency; a useful summary number for tests
    /// and reports.
    pub fn idle_read_latency(&self) -> Time {
        self.t_rp + self.t_rcd_read + self.t_cas
    }
}

/// Aggregate counters maintained by a [`DramModel`].
#[derive(Clone, Copy, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DramStats {
    /// Number of read accesses.
    pub reads: Counter,
    /// Number of write accesses.
    pub writes: Counter,
    /// Accesses that hit in an open row buffer.
    pub row_hits: Counter,
    /// Accesses that required closing and opening a row.
    pub row_misses: Counter,
    /// Accesses that had to wait because their bank was busy.
    pub bank_conflicts: Counter,
}

impl DramStats {
    /// Total accesses (reads + writes).
    pub fn total_accesses(&self) -> u64 {
        self.reads.get() + self.writes.get()
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    busy: Serializer,
}

/// Bank-level DRAM model for one NDP unit.
///
/// Every access targets one 64-byte line; the bank is derived from the line address,
/// the row from the line address divided by the row size. Bank conflicts serialize;
/// row hits skip the precharge/activate sequence.
///
/// # Example
///
/// ```
/// use syncron_mem::dram::{DramModel, DramSpec};
/// use syncron_sim::{Addr, Time};
///
/// let mut dram = DramModel::new(DramSpec::hbm());
/// let done = dram.access(Time::ZERO, Addr(0x1000), false);
/// assert!(done > Time::ZERO);
/// assert_eq!(dram.stats().reads.get(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct DramModel {
    spec: DramSpec,
    banks: Vec<Bank>,
    stats: DramStats,
    bits_transferred: u64,
}

impl DramModel {
    /// Creates a DRAM model from a spec.
    pub fn new(spec: DramSpec) -> Self {
        DramModel {
            banks: vec![Bank::default(); spec.banks],
            spec,
            stats: DramStats::default(),
            bits_transferred: 0,
        }
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &DramSpec {
        &self.spec
    }

    /// Performs one 64-byte access starting no earlier than `now`.
    ///
    /// Returns the absolute time at which the data is available (read) or durably
    /// written (write). Bank conflicts, row misses and write recovery are accounted.
    pub fn access(&mut self, now: Time, addr: Addr, write: bool) -> Time {
        // Row-interleaved mapping: consecutive lines share a row buffer, consecutive
        // rows map to different banks. This preserves row-buffer locality for streaming
        // accesses while spreading rows across banks.
        let line = addr.line_index();
        let lines_per_row = (self.spec.row_bytes / Addr::LINE_BYTES).max(1);
        let row = line / lines_per_row;
        let bank_idx = (row as usize) % self.banks.len();
        let bank = &mut self.banks[bank_idx];

        if write {
            self.stats.writes.inc();
        } else {
            self.stats.reads.inc();
        }
        self.bits_transferred += Addr::LINE_BYTES * 8;

        let row_hit = bank.open_row == Some(row);
        let t_rcd = if write {
            self.spec.t_rcd_write
        } else {
            self.spec.t_rcd_read
        };
        let access_latency = if row_hit {
            self.stats.row_hits.inc();
            self.spec.t_cas
        } else {
            self.stats.row_misses.inc();
            bank.open_row = Some(row);
            self.spec.t_rp + t_rcd + self.spec.t_cas
        };
        // The bank is occupied for the access itself plus write recovery when writing.
        let occupancy = if write {
            access_latency + self.spec.t_wr
        } else {
            access_latency
        };

        if !bank.busy.is_idle_at(now) {
            self.stats.bank_conflicts.inc();
        }
        let start = bank.busy.acquire(now, occupancy);
        start + access_latency
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Total DRAM energy in picojoules (bits transferred × pJ/bit).
    pub fn energy_pj(&self) -> f64 {
        self.bits_transferred as f64 * self.spec.pj_per_bit
    }

    /// Total bytes transferred to/from this DRAM device.
    pub fn bytes_transferred(&self) -> u64 {
        self.bits_transferred / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_table5() {
        let hbm = DramSpec::hbm();
        assert_eq!(hbm.t_rcd_read, Time::from_ns(7));
        assert_eq!(hbm.t_rcd_write, Time::from_ns(6));
        assert_eq!(hbm.t_ras, Time::from_ns(17));
        assert_eq!(hbm.t_wr, Time::from_ns(8));
        assert_eq!(hbm.pj_per_bit, 7.0);

        let hmc = DramSpec::hmc();
        assert_eq!(hmc.t_rcd_read, Time::from_ns(17));
        assert_eq!(hmc.t_ras, Time::from_ns(34));
        assert_eq!(hmc.t_wr, Time::from_ns(19));

        let ddr4 = DramSpec::ddr4();
        assert_eq!(ddr4.t_rcd_read, Time::from_ns(16));
        assert_eq!(ddr4.t_ras, Time::from_ns(39));
        assert_eq!(ddr4.t_wr, Time::from_ns(18));
    }

    #[test]
    fn technology_ordering_of_idle_latency() {
        // The paper's sensitivity study relies on DDR4/HMC having higher access latency
        // than HBM.
        let hbm = DramSpec::hbm().idle_read_latency();
        let hmc = DramSpec::hmc().idle_read_latency();
        let ddr4 = DramSpec::ddr4().idle_read_latency();
        assert!(hbm < hmc);
        assert!(hbm < ddr4);
    }

    #[test]
    fn row_hits_are_faster_than_row_misses() {
        let mut dram = DramModel::new(DramSpec::hbm());
        let miss_done = dram.access(Time::ZERO, Addr(0), false);
        // Second access to the same row, issued long after the bank is free.
        let later = Time::from_us(1);
        let hit_done = dram.access(later, Addr(64), false);
        assert!(hit_done - later < miss_done - Time::ZERO);
        assert_eq!(dram.stats().row_hits.get(), 1);
        assert_eq!(dram.stats().row_misses.get(), 1);
    }

    #[test]
    fn bank_conflicts_serialize() {
        let spec = DramSpec::hbm();
        let mut dram = DramModel::new(spec);
        // Two back-to-back accesses to the same bank but different rows: row R and
        // row R + banks map to the same bank under row-interleaving.
        let stride = spec.row_bytes * spec.banks as u64;
        let first = dram.access(Time::ZERO, Addr(0), false);
        let second = dram.access(Time::ZERO, Addr(stride), false);
        assert!(
            second > first,
            "conflicting access should wait for the bank"
        );
        assert_eq!(dram.stats().bank_conflicts.get(), 1);
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let spec = DramSpec::hbm();
        let mut dram = DramModel::new(spec);
        let a = dram.access(Time::ZERO, Addr(0), false);
        let b = dram.access(Time::ZERO, Addr(spec.row_bytes), false); // next row → next bank
        assert_eq!(a - Time::ZERO, b - Time::ZERO);
    }

    #[test]
    fn writes_track_energy_and_counts() {
        let mut dram = DramModel::new(DramSpec::ddr4());
        dram.access(Time::ZERO, Addr(0), true);
        dram.access(Time::ZERO, Addr(64), false);
        assert_eq!(dram.stats().writes.get(), 1);
        assert_eq!(dram.stats().reads.get(), 1);
        assert_eq!(dram.bytes_transferred(), 128);
        let expected = 2.0 * 64.0 * 8.0 * DramSpec::ddr4().pj_per_bit;
        assert!((dram.energy_pj() - expected).abs() < 1e-9);
    }

    #[test]
    fn tech_names() {
        assert_eq!(MemTech::Hbm.name(), "hbm");
        assert_eq!(MemTech::Hmc.to_string(), "hmc");
        assert_eq!(MemTech::ALL.len(), 3);
        assert_eq!(DramSpec::for_tech(MemTech::Ddr4).tech, MemTech::Ddr4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use syncron_sim::SimRng;

    /// Completion times never precede the request time, and stats add up.
    ///
    /// Deterministic stand-in for a proptest property (no crates.io access).
    #[test]
    fn completion_after_request() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0xD7A3_0000 + case);
            let count = 1 + rng.gen_range(199) as usize;
            let mut accesses: Vec<(u64, u64, bool)> = (0..count)
                .map(|_| {
                    (
                        rng.gen_range(1_000_000),
                        rng.gen_range(1 << 20),
                        rng.gen_bool(0.5),
                    )
                })
                .collect();
            let mut dram = DramModel::new(DramSpec::hbm());
            accesses.sort();
            for &(t, a, w) in &accesses {
                let now = Time::from_ps(t);
                let done = dram.access(now, Addr(a), w);
                assert!(done > now);
            }
            let s = dram.stats();
            assert_eq!(s.total_accesses(), accesses.len() as u64);
            assert_eq!(s.row_hits.get() + s.row_misses.get(), accesses.len() as u64);
        }
    }
}
