//! `syncron-cli` — run SynCron evaluation scenarios and sweeps from files.
//!
//! Subcommands:
//!
//! * `list` — the workload catalog, configuration axes and bundled scenario files;
//! * `run <file>` — execute the `[[scenario]]` entries of a TOML/JSON file;
//! * `sweep <file>` — expand and execute the `[sweep]` of a TOML/JSON file.
//!
//! Both `run` and `sweep` accept `--json <path>` / `--csv <path>` to export the full
//! result set, `--threads <n>` to cap parallelism, and `-q` to silence per-scenario
//! progress. See `scenarios/` in the repository root for ready-made files reproducing
//! the paper's figures.

use std::process::ExitCode;

use syncron_harness::json::Value;
use syncron_harness::{HarnessError, RunSet, Runner, Scenario, Sweep, WorkloadSpec};

const USAGE: &str = "syncron-cli — SynCron (HPCA 2021) scenario driver

USAGE:
    syncron-cli list
    syncron-cli run   <file.toml|file.json> [OPTIONS]
    syncron-cli sweep <file.toml|file.json> [OPTIONS]

OPTIONS:
    --json <path>        write the full result set as JSON
    --csv <path>         write the full result set as CSV
    --threads <n>        cap the number of worker threads
    --dry-run            expand and list scenario labels without simulating
    --allow-incomplete   exit 0 even when some runs end incomplete or panicked
    -q, --quiet          no per-scenario progress on stderr
    -h, --help           show this help

FILE FORMATS (TOML shown; the JSON equivalent mirrors the structure):
    # run: explicit scenarios
    [[scenario]]
    label = \"demo\"
    [scenario.config]          # any omitted field keeps the paper default
    mechanism = \"SynCron\"
    [scenario.workload]
    kind = \"data-structure\"
    name = \"stack\"

    # sweep: cartesian product — array-valued fields become axes
    [sweep]
    label = \"fig17\"
    [sweep.config]
    mechanism = [\"Central\", \"Hier\", \"SynCron\", \"Ideal\"]
    link_latency_ns = [40, 100, 200, 500]
    [sweep.workload]
    kind = \"graph\"
    algo = \"pr\"
    input = \"wk\"
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    file: String,
    json_out: Option<String>,
    csv_out: Option<String>,
    threads: Option<usize>,
    quiet: bool,
    dry_run: bool,
    allow_incomplete: bool,
}

/// Parses subcommand options; `Ok(None)` means help was requested.
fn parse_options(args: &[String]) -> Result<Option<Options>, String> {
    let mut file = None;
    let mut json_out = None;
    let mut csv_out = None;
    let mut threads = None;
    let mut quiet = false;
    let mut dry_run = false;
    let mut allow_incomplete = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                json_out = Some(it.next().ok_or("--json needs a path argument")?.to_string())
            }
            "--csv" => csv_out = Some(it.next().ok_or("--csv needs a path argument")?.to_string()),
            "--threads" => {
                threads = Some(
                    it.next()
                        .ok_or("--threads needs a number")?
                        .parse::<usize>()
                        .map_err(|_| "--threads needs a number".to_string())?,
                )
            }
            "-q" | "--quiet" => quiet = true,
            "--dry-run" => dry_run = true,
            "--allow-incomplete" => allow_incomplete = true,
            "-h" | "--help" => return Ok(None),
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'\n\n{USAGE}")),
        }
    }
    Ok(Some(Options {
        file: file.ok_or_else(|| format!("missing scenario file\n\n{USAGE}"))?,
        json_out,
        csv_out,
        threads,
        quiet,
        dry_run,
        allow_incomplete,
    }))
}

fn run_cli(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            Ok(())
        }
        Some("run") => match parse_options(&args[1..])? {
            Some(options) => execute(&options, Mode::Run),
            None => {
                println!("{USAGE}");
                Ok(())
            }
        },
        Some("sweep") => match parse_options(&args[1..])? {
            Some(options) => execute(&options, Mode::Sweep),
            None => {
                println!("{USAGE}");
                Ok(())
            }
        },
        Some("-h") | Some("--help") => {
            println!("{USAGE}");
            Ok(())
        }
        _ => Err(USAGE.to_string()),
    }
}

fn list() {
    println!("workload kinds (for [scenario.workload] / [sweep.workload] tables):\n");
    for line in WorkloadSpec::catalog() {
        println!("    {line}");
    }
    println!(
        "\nconfig fields (for [scenario.config] / [sweep.config] tables; omitted fields \
         keep the paper's Table 5 defaults):\n"
    );
    for line in [
        "units=<1..=256>                   NDP units (default 4)",
        "cores_per_unit=<1..=256>          cores per unit (default 16)",
        "mechanism=Central|Hier|SynCron|SynCron-flat|MCS|Adaptive|Ideal",
        "mem_tech=hbm|hmc|ddr4             memory technology",
        "link_latency_ns=<n>               inter-unit transfer latency (default 40)",
        "st_entries=<n>                    Synchronization Table size (default 64)",
        "overflow_mode=integrated|central-overflow|distributed-overflow",
        "signal_coalescing=true|false      coalesce condvar signals at the engine (default true)",
        "signal_backoff_ns=<n>             base NACK backoff for repeat signalers (default 200)",
        "fairness_threshold=<n>|\"off\"      local-grant fairness threshold",
        "adaptive_threshold=<n>            contention depth for Adaptive's flat->hierarchical escalation (default 4)",
        "coherence=software-assisted|mesi  shared-RW data handling",
        "mesi_profile=ndp|cpu-two-socket   MESI latencies (with coherence=mesi)",
        "reserve_server_core=true|false    reserve one core per unit as server",
        "seed=<n>                          deterministic workload seed",
        "max_events=<n>                    event safety limit",
        "scheduler=calendar|heap           event-queue backend (bit-identical results)",
        "inline_step_budget=<n>            run-loop inline dispatch budget (0 disables)",
        "message_batching=true|false       coalesce equal-timestamp engine messages (bit-identical results)",
        "sim_threads=<n>                   sharded-execution workers (1 = sequential; bit-identical results)",
        "md1_model=quantized|exact         crossbar M/D/1 evaluation (quantized table vs closed form)",
        "burst_resume=true|false           coalesce same-time core wake-ups per unit (bit-identical results)",
        "column_batching=true|false        share slot lookups across same-variable batch members (bit-identical results)",
        "fault_injection=true|false        seeded fault injection on mechanism messages (default false)",
        "fault_drop=<p>                    per-message drop probability in [0, 1]",
        "fault_dup=<p>                     per-message duplication probability in [0, 1]",
        "fault_jitter_ns=<n>               max extra delivery delay per faulted message",
        "fault_stall_ns=<n>                per-SE stall-window length (with fault_stall_period_ns)",
        "fault_stall_period_ns=<n>         per-SE stall-window period (0 disables stalls)",
        "fault_drop_nth=<n>                deterministically drop every n-th original message",
        "fault_retry_ns=<n>                retransmission timeout base (default 2000)",
        "fault_backoff_cap=<n>             exponential-backoff doubling cap (default 6)",
        "watchdog=true|false               liveness watchdog aborting stalled runs (default true)",
        "watchdog_events=<n>               no-progress event threshold (0 = auto from max_events)",
    ] {
        println!("    {line}");
    }
    println!("\nbundled scenario files: see scenarios/ in the repository root.");
}

enum Mode {
    Run,
    Sweep,
}

fn load_document(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".json") {
        syncron_harness::json::parse(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        syncron_harness::toml::parse(&text).map_err(|e| format!("{path}: {e}"))
    }
}

fn collect_scenarios(doc: &Value, mode: Mode, path: &str) -> Result<Vec<Scenario>, String> {
    let harness_err = |e: HarnessError| format!("{path}: {e}");
    match mode {
        Mode::Run => {
            let entries = doc
                .get("scenario")
                .and_then(Value::as_array)
                .ok_or_else(|| {
                    format!(
                        "{path}: a run file needs [[scenario]] entries (or a \"scenario\" array)"
                    )
                })?;
            entries
                .iter()
                .map(|entry| Scenario::from_value(entry).map_err(harness_err))
                .collect()
        }
        Mode::Sweep => {
            let sweep = doc
                .get("sweep")
                .ok_or_else(|| format!("{path}: a sweep file needs a [sweep] table"))?;
            Sweep::scenarios_from_value(sweep).map_err(harness_err)
        }
    }
}

fn execute(options: &Options, mode: Mode) -> Result<(), String> {
    let doc = load_document(&options.file)?;
    let scenarios = collect_scenarios(&doc, mode, &options.file)?;
    eprintln!(
        "{}: {} scenario{}",
        options.file,
        scenarios.len(),
        if scenarios.len() == 1 { "" } else { "s" }
    );
    if options.dry_run {
        for scenario in &scenarios {
            scenario
                .workload
                .build()
                .map_err(|e| format!("{}: {e}", scenario.label))?;
            println!("{}", scenario.label);
        }
        return Ok(());
    }

    let mut runner = Runner::new();
    if let Some(threads) = options.threads {
        runner = runner.threads(threads);
    }
    if !options.quiet {
        runner = runner.on_progress(|p| {
            eprintln!(
                "[{}/{}] {} {}",
                p.finished,
                p.total,
                p.label,
                if p.completed { "" } else { "(INCOMPLETE)" }
            );
        });
    }
    let results = runner
        .run(&scenarios)
        .map_err(|e| format!("{}: {e}", options.file))?;

    print_summary(&results);
    for line in incomplete_warnings(&results) {
        eprintln!("{line}");
    }
    if let Some(path) = &options.json_out {
        results.write_json(path).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = &options.csv_out {
        results.write_csv(path).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    // Exports are written first so a failing gate still leaves the partial
    // numbers on disk for inspection.
    completion_gate(&results, options.allow_incomplete)
}

/// Non-zero-exit gate: any incomplete or panicked run fails the invocation
/// unless `--allow-incomplete` was given.
fn completion_gate(results: &RunSet, allow_incomplete: bool) -> Result<(), String> {
    let incomplete = results
        .entries()
        .iter()
        .filter(|e| !e.report.completed)
        .count();
    if incomplete == 0 || allow_incomplete {
        return Ok(());
    }
    Err(format!(
        "{incomplete} of {} scenario{} did not complete; pass --allow-incomplete to \
         exit 0 with partial results",
        results.len(),
        if results.len() == 1 { "" } else { "s" },
    ))
}

/// Builds a loud per-scenario warning block for runs that did not finish
/// (`completed = false`): their numbers are partial and must not be read as
/// results. Each line carries the typed diagnosis — event budget, watchdog
/// stall (with the first blocked core and its sync-variable address), or a
/// panic. Returns an empty vector when every run completed.
fn incomplete_warnings(results: &RunSet) -> Vec<String> {
    use syncron_system::IncompleteReason;

    let incomplete: Vec<_> = results
        .entries()
        .iter()
        .filter(|e| !e.report.completed)
        .collect();
    if incomplete.is_empty() {
        return Vec::new();
    }
    let mut lines = vec![format!(
        "warning: {} of {} scenario{} did not finish (completed = false); the exported \
         numbers for {} are partial:",
        incomplete.len(),
        results.len(),
        if results.len() == 1 { "" } else { "s" },
        if incomplete.len() == 1 { "it" } else { "them" },
    )];
    for entry in &incomplete {
        let label = &entry.scenario.label;
        let detail = match &entry.report.incomplete {
            None | Some(IncompleteReason::EventBudget) => format!(
                "max_events = {}; raise it in the scenario's [config] to finish the run",
                entry.scenario.config.max_events
            ),
            Some(IncompleteReason::Stalled(stall)) => {
                let first = stall
                    .blocked
                    .first()
                    .map(|b| {
                        format!(
                            "; first blocked: unit {} core {} on 0x{:x}",
                            b.unit, b.core, b.addr
                        )
                    })
                    .unwrap_or_default();
                format!(
                    "{}: {} of {} unfinished cores blocked{first}",
                    entry
                        .report
                        .incomplete
                        .as_ref()
                        .map_or("stalled", |i| i.label()),
                    stall.blocked_total,
                    stall.unfinished,
                )
            }
            Some(IncompleteReason::Panicked(msg)) => format!("panicked: {msg}"),
        };
        lines.push(format!("  - {label} ({detail})"));
    }
    lines
}

/// Builds the per-scenario summary block `run`/`sweep` print: simulated results
/// plus the simulator's own throughput (delivered events per wall-clock second),
/// with an aggregate trailer line. When any entry is an open-loop service run,
/// per-request tail-latency columns (p50/p99/p999, microseconds) are added;
/// closed-loop rows show "-" there since they have no admission timeline.
fn summary_lines(results: &RunSet) -> Vec<String> {
    let width = results
        .entries()
        .iter()
        .map(|e| e.scenario.label.len())
        .max()
        .unwrap_or(8)
        .max(8);
    let show_latency = results.entries().iter().any(|e| e.report.latency.is_some());
    let latency_header = if show_latency {
        format!("  {:>9}  {:>9}  {:>9}", "p50 us", "p99 us", "p999 us")
    } else {
        String::new()
    };
    let mut lines = vec![format!(
        "{:<width$}  {:>12}  {:>10}  {:>9}  {:>12}{latency_header}  {:>12}",
        "label", "sim time us", "ops/ms", "complete", "sync msgs", "sim ev/s"
    )];
    for entry in results.entries() {
        let r = &entry.report;
        let latency_cells = if show_latency {
            match r.latency {
                Some(l) => format!(
                    "  {:>9.2}  {:>9.2}  {:>9.2}",
                    l.p50_ns / 1000.0,
                    l.p99_ns / 1000.0,
                    l.p999_ns / 1000.0
                ),
                None => format!("  {:>9}  {:>9}  {:>9}", "-", "-", "-"),
            }
        } else {
            String::new()
        };
        lines.push(format!(
            "{:<width$}  {:>12.2}  {:>10.2}  {:>9}  {:>12}{latency_cells}  {:>12.3e}",
            entry.scenario.label,
            r.sim_time.as_us_f64(),
            r.ops_per_ms(),
            if r.completed { "yes" } else { "NO" },
            r.sync.local_messages + r.sync.global_messages,
            r.perf.events_per_sec(),
        ));
    }
    if !results.is_empty() {
        lines.push(format!(
            "simulator: {} events in {:.3}s of simulation work ({:.3e} events/sec aggregate)",
            results.total_events_delivered(),
            results.total_wall_seconds(),
            results.aggregate_events_per_sec(),
        ));
    }
    lines
}

fn print_summary(results: &RunSet) {
    for line in summary_lines(results) {
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncron_harness::ConfigSpec;

    fn run_scenario(label: &str, max_events: u64) -> (Scenario, syncron_system::RunReport) {
        let mut config = ConfigSpec::default().with_geometry(2, 4);
        config.max_events = max_events;
        let scenario = Scenario::new(
            label,
            config,
            WorkloadSpec::Micro {
                primitive: syncron_workloads::micro::SyncPrimitive::Lock,
                interval: 100,
                iterations: 8,
            },
        );
        let report = scenario.run().expect("scenario runs");
        (scenario, report)
    }

    #[test]
    fn incomplete_runs_get_a_loud_warning() {
        // A tiny event budget aborts the run (completed = false); a generous one
        // finishes it. The warning block must name exactly the aborted scenario and
        // its max_events so the user can tell partial numbers from results.
        let complete = run_scenario("ok", 50_000_000);
        let truncated = run_scenario("truncated", 50);
        assert!(complete.1.completed);
        assert!(!truncated.1.completed, "50 events cannot finish the run");

        let set = RunSet::from_pairs([complete, truncated]).unwrap();
        let warnings = incomplete_warnings(&set);
        assert_eq!(warnings.len(), 2, "one header plus one scenario line");
        assert!(warnings[0].contains("warning: 1 of 2 scenarios"));
        assert!(warnings[0].contains("completed = false"));
        assert!(warnings[1].contains("truncated"));
        assert!(warnings[1].contains("max_events = 50"));
        assert!(
            !warnings.iter().any(|l| l.contains("- ok ")),
            "completed runs are not flagged"
        );
    }

    /// Writes a one-scenario run file with the given event budget and returns
    /// its path (unique per call so parallel tests don't collide).
    fn write_run_file(stem: &str, max_events: u64) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("syncron_cli_{stem}_{max_events}.toml"));
        let text = format!(
            "[[scenario]]\nlabel = \"t\"\n[scenario.config]\nunits = 2\ncores_per_unit = 4\n\
             max_events = {max_events}\n[scenario.workload]\nkind = \"micro\"\n\
             primitive = \"lock\"\ninterval = 100\niterations = 8\n"
        );
        std::fs::write(&path, text).expect("temp scenario file");
        path
    }

    #[test]
    fn incomplete_runs_fail_the_invocation_unless_allowed() {
        let path = write_run_file("gate", 50);
        let file = path.to_str().unwrap().to_string();
        let err = run_cli(&["run".into(), file.clone(), "-q".into()])
            .expect_err("an incomplete run must exit non-zero");
        assert!(err.contains("--allow-incomplete"), "{err}");
        assert!(err.contains("1 of 1 scenario"), "{err}");
        run_cli(&["run".into(), file, "-q".into(), "--allow-incomplete".into()])
            .expect("--allow-incomplete restores the old exit behavior");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn completed_runs_exit_zero_without_the_flag() {
        let path = write_run_file("clean", 50_000_000);
        let file = path.to_str().unwrap().to_string();
        run_cli(&["run".into(), file, "-q".into()]).expect("clean runs exit 0");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sweep_exit_gate_matches_run() {
        let path = std::env::temp_dir().join("syncron_cli_sweep_gate.toml");
        let text = "[sweep]\nlabel = \"g\"\n[sweep.config]\nunits = 2\ncores_per_unit = 4\n\
                    max_events = 50\nmechanism = [\"Central\", \"SynCron\"]\n[[sweep.workload]]\n\
                    kind = \"micro\"\nprimitive = \"lock\"\ninterval = 100\niterations = 8\n";
        std::fs::write(&path, text).expect("temp sweep file");
        let file = path.to_str().unwrap().to_string();
        let err = run_cli(&["sweep".into(), file.clone(), "-q".into()])
            .expect_err("incomplete sweep runs must exit non-zero");
        assert!(err.contains("2 of 2 scenarios"), "{err}");
        run_cli(&[
            "sweep".into(),
            file,
            "-q".into(),
            "--allow-incomplete".into(),
        ])
        .expect("--allow-incomplete applies to sweeps too");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stall_and_panic_diagnoses_appear_in_warnings() {
        use syncron_system::{BlockedCore, IncompleteReason, StallKind, StallReport};
        let (scenario, _) = run_scenario("ok", 50_000_000);
        let stalled = Scenario::new(
            "stalled",
            scenario.config.clone(),
            scenario.workload.clone(),
        );
        let stalled_report = syncron_system::RunReport::failed(
            "wl",
            "SynCron",
            IncompleteReason::Stalled(StallReport {
                kind: StallKind::EmptyFrontier,
                blocked: vec![BlockedCore {
                    unit: 3,
                    core: 7,
                    addr: 0x1c0,
                }],
                blocked_total: 5,
                unfinished: 6,
            }),
        );
        let panicked = Scenario::new(
            "panicked",
            scenario.config.clone(),
            scenario.workload.clone(),
        );
        let panicked_report = syncron_system::RunReport::failed(
            "wl",
            "SynCron",
            IncompleteReason::Panicked("index out of bounds".into()),
        );
        let set =
            RunSet::from_pairs([(stalled, stalled_report), (panicked, panicked_report)]).unwrap();
        let warnings = incomplete_warnings(&set);
        let stall_line = warnings.iter().find(|l| l.contains("- stalled")).unwrap();
        assert!(stall_line.contains("stalled-deadlock"), "{stall_line}");
        assert!(stall_line.contains("5 of 6"), "{stall_line}");
        assert!(
            stall_line.contains("unit 3 core 7 on 0x1c0"),
            "{stall_line}"
        );
        let panic_line = warnings.iter().find(|l| l.contains("- panicked")).unwrap();
        assert!(
            panic_line.contains("panicked: index out of bounds"),
            "{panic_line}"
        );
    }

    #[test]
    fn fully_completed_runs_warn_nothing() {
        let set = RunSet::from_pairs([run_scenario("ok", 50_000_000)]).unwrap();
        assert!(incomplete_warnings(&set).is_empty());
    }

    #[test]
    fn summary_prints_events_per_sec_per_scenario() {
        let set = RunSet::from_pairs([
            run_scenario("alpha", 50_000_000),
            run_scenario("beta", 50_000_000),
        ])
        .unwrap();
        let lines = summary_lines(&set);
        // Header + one row per scenario + the aggregate trailer.
        assert_eq!(lines.len(), 1 + set.len() + 1);
        assert!(lines[0].contains("sim ev/s"));
        for (entry, line) in set.entries().iter().zip(&lines[1..]) {
            assert!(line.contains(&entry.scenario.label));
            // The exact scientific-formatted throughput cell of this entry.
            let cell = format!("{:.3e}", entry.report.perf.events_per_sec());
            assert!(
                line.contains(&cell),
                "throughput cell {cell} missing in {line:?}"
            );
        }
        let trailer = lines.last().unwrap();
        assert!(trailer.contains("events/sec aggregate"));
        assert!(trailer.contains(&set.total_events_delivered().to_string()));
        assert!(summary_lines(&RunSet::empty()).len() == 1);
        // Closed-loop-only sets stay free of latency columns.
        assert!(!lines[0].contains("p99 us"));
    }

    #[test]
    fn summary_shows_tail_latency_only_when_an_open_loop_run_is_present() {
        use syncron_workloads::service::{ArrivalProcess, ServiceShape};
        let mut config = ConfigSpec::default().with_geometry(2, 4);
        config.max_events = 50_000_000;
        let service = Scenario::new(
            "svc",
            config.clone(),
            WorkloadSpec::Service {
                shape: ServiceShape::Kv,
                arrival: ArrivalProcess::Poisson { rate_per_us: 0.05 },
                keys: 10_000,
                zipf_s: 0.99,
                requests: 8,
            },
        );
        let service_report = service.run().expect("service scenario runs");
        let closed = run_scenario("closed", 50_000_000);
        let set = RunSet::from_pairs([(service, service_report), closed]).unwrap();
        let lines = summary_lines(&set);
        assert!(lines[0].contains("p50 us"));
        assert!(lines[0].contains("p99 us"));
        assert!(lines[0].contains("p999 us"));
        let svc_line = lines.iter().find(|l| l.starts_with("svc")).unwrap();
        let latency = set.get("svc").unwrap().report.latency.unwrap();
        assert!(svc_line.contains(&format!("{:.2}", latency.p99_ns / 1000.0)));
        let closed_line = lines.iter().find(|l| l.starts_with("closed")).unwrap();
        assert!(
            closed_line.contains("  -  ") || closed_line.contains(" - "),
            "closed-loop rows show dashes: {closed_line:?}"
        );
    }
}
