//! Criterion micro-benchmarks of the simulator's hot kernels.
//!
//! These do not correspond to a paper figure; they keep the substrate honest (event
//! queue, Synchronization Table, L1 cache, DRAM timing, crossbar, MESI directory) so
//! that regressions in the simulator itself are caught by `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use syncron_core::request::PrimitiveKind;
use syncron_core::table::SynchronizationTable;
use syncron_mem::cache::{CacheConfig, L1Cache};
use syncron_mem::dram::{DramModel, DramSpec};
use syncron_mem::mesi::{CoherentAccess, MesiDirectory, MesiParams};
use syncron_net::crossbar::{Crossbar, CrossbarConfig};
use syncron_sim::event::EventQueue;
use syncron_sim::{Addr, GlobalCoreId, Time, UnitId};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1024u64 {
                q.push(Time::from_ps((i * 7919) % 4096), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
}

fn bench_synchronization_table(c: &mut Criterion) {
    c.bench_function("st_allocate_lookup_release", |b| {
        b.iter(|| {
            let mut st = SynchronizationTable::new(64);
            for i in 0..64u64 {
                st.allocate(Time::from_ns(i), Addr(i * 64), PrimitiveKind::Lock);
            }
            for i in 0..64u64 {
                black_box(st.lookup(Addr(i * 64)));
            }
            for i in 0..64u64 {
                st.release(Time::from_ns(100 + i), Addr(i * 64));
            }
            black_box(st.occupied())
        })
    });
}

fn bench_l1_cache(c: &mut Criterion) {
    c.bench_function("l1_cache_access_stream", |b| {
        let mut l1 = L1Cache::new(CacheConfig::ndp_l1());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(l1.access(Addr((i * 64) % (64 * 1024)), i % 3 == 0))
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_hbm_access", |b| {
        let mut dram = DramModel::new(DramSpec::hbm());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(dram.access(Time::from_ns(i), Addr(i * 64 * 33), i % 4 == 0))
        })
    });
}

fn bench_crossbar(c: &mut Criterion) {
    c.bench_function("crossbar_transfer", |b| {
        let mut xbar = Crossbar::new(CrossbarConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(xbar.transfer(Time::from_ns(i), 64))
        })
    });
}

fn bench_mesi(c: &mut Criterion) {
    c.bench_function("mesi_directory_rmw_pingpong", |b| {
        let mut dir = MesiDirectory::new(4, 16, MesiParams::ndp_default());
        let cores: Vec<GlobalCoreId> = (0..8)
            .map(|i| GlobalCoreId::from_flat(i * 7 % 64, 16))
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let core = cores[i % cores.len()];
            black_box(dir.access(
                Time::from_ns(i as u64),
                core,
                Addr(0x1000),
                CoherentAccess::Rmw,
                UnitId(0),
            ))
        })
    });
}

criterion_group!(
    kernels,
    bench_event_queue,
    bench_synchronization_table,
    bench_l1_cache,
    bench_dram,
    bench_crossbar,
    bench_mesi
);
criterion_main!(kernels);
