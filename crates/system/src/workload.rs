//! The execution model: how workloads run on the simulated NDP cores.
//!
//! The NDP cores of the paper are simple in-order cores that issue one memory operation
//! at a time (Section 5). The simulator models them as *programs* that are stepped one
//! [`Action`] at a time: the machine asks the core's program for its next action,
//! charges its latency (compute cycles, a cache/memory access, or a synchronization
//! request), and asks again when the action completes. Workload state that is logically
//! shared between cores (a concurrent data structure, a graph, an output array) lives
//! in ordinary Rust values shared between the per-core programs via `Arc<Mutex<…>>`;
//! the simulator serializes all steps of one run (the sharded mode moves whole cores —
//! never individual steps — across worker threads, hence the `Send` bound), and mutual
//! exclusion of the *simulated* accesses is enforced by the simulated synchronization
//! itself. Workloads whose programs share state *outside* simulated critical sections
//! must keep [`Workload::shard_safe`] at its `false` default: the sharded mode would
//! step such programs in a different real-time order than the sequential mode, and the
//! run falls back to sequential execution instead.

use crate::address::AddressSpace;
use crate::config::NdpConfig;
use syncron_core::request::SyncRequest;
use syncron_sim::stats::LogHistogram;
use syncron_sim::time::Time;
use syncron_sim::{Addr, GlobalCoreId};

/// The next thing a core does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Execute `instrs` instructions of local computation (CPI 1, no memory accesses).
    Compute {
        /// Number of instructions.
        instrs: u64,
    },
    /// Load one word (modeled at cache-line granularity) from `addr`.
    Load {
        /// Address to read.
        addr: Addr,
    },
    /// Store one word to `addr`.
    Store {
        /// Address to write.
        addr: Addr,
    },
    /// Atomic read-modify-write on `addr` (test-and-set, CAS, fetch-and-add). Only
    /// meaningful under the MESI coherence mode used by the motivational experiments;
    /// under software-assisted coherence it costs a load plus a store.
    Rmw {
        /// Address to update atomically.
        addr: Addr,
    },
    /// Issue a synchronization request (`req_sync` / `req_async`).
    Sync(SyncRequest),
    /// The program has finished; the core goes idle.
    Done,
}

/// The program executed by one NDP core.
///
/// `Send` because the sharded execution mode hands each core's program to the
/// worker thread owning that core's unit for the duration of the run.
pub trait CoreProgram: Send {
    /// Returns the core's next action. Called again when the previous action completes
    /// (for blocking synchronization, when the response message arrives).
    fn step(&mut self, core: GlobalCoreId, now: Time) -> Action;

    /// Number of application-level operations (data-structure operations, processed
    /// vertices, …) this core has completed, used for throughput reports.
    fn ops_completed(&self) -> u64 {
        0
    }

    /// Per-request latency histogram (nanoseconds) for open-loop programs that
    /// measure admission→completion time per request. Closed-loop programs (the
    /// default) return `None`; the machine merges the histograms of all cores into
    /// [`RunReport::latency`](crate::report::RunReport::latency).
    fn latency_histogram(&self) -> Option<&LogHistogram> {
        None
    }
}

impl std::fmt::Debug for dyn CoreProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CoreProgram(ops={})", self.ops_completed())
    }
}

/// A workload: allocates its data in the NDP address space and provides one program per
/// client core.
pub trait Workload {
    /// Human-readable name (used in reports, e.g. `"pr.wk"` or `"stack"`).
    fn name(&self) -> String;

    /// Allocates the workload's data and builds one program per entry of `clients`
    /// (in the same order).
    fn build(
        &self,
        space: &mut AddressSpace,
        config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>>;

    /// Whether the programs this workload builds may be stepped by the sharded
    /// (conservative-PDES) execution mode.
    ///
    /// Sharding preserves the simulated event order bit for bit, but it steps
    /// programs of different units in a different *real-time* order than the
    /// sequential loop. That is invisible to programs that only communicate
    /// through simulated synchronization (reads/writes of shared Rust state
    /// happen strictly inside simulated critical sections, whose cross-unit
    /// hand-offs cost at least the inter-unit link latency — one full lookahead
    /// window). Programs that read shared state outside any simulated critical
    /// section (e.g. a poller watching a counter other cores update) observe
    /// the stepping order itself and MUST keep the `false` default, which makes
    /// the machine fall back to sequential execution for this workload.
    fn shard_safe(&self) -> bool {
        false
    }
}

impl std::fmt::Debug for dyn Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Workload({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl CoreProgram for Nop {
        fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
            Action::Done
        }
    }

    #[test]
    fn default_ops_completed_is_zero() {
        let nop = Nop;
        assert_eq!(nop.ops_completed(), 0);
        let boxed: Box<dyn CoreProgram> = Box::new(Nop);
        assert!(format!("{boxed:?}").contains("CoreProgram"));
    }

    #[test]
    fn action_is_copy_and_comparable() {
        let a = Action::Compute { instrs: 5 };
        let b = a;
        assert_eq!(a, b);
        assert_ne!(a, Action::Done);
    }
}
