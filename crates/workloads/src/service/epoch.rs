//! Reader-writer epoch reclamation on barriers and condition variables.
//!
//! Each unit runs an epoch-based memory-reclamation loop: client cores are
//! *readers* serving open-loop read requests against the shared key space, and
//! one core per unit (the first client, when the unit has at least two) is the
//! *reclaimer*. Time is divided into epochs of `OPS_PER_EPOCH` (4) reads per
//! reader. At the end of an epoch the designated reader signals the unit's
//! condition variable, the reclaimer wakes, takes the epoch lock, retires the
//! garbage of the closed epoch, and everyone — readers and reclaimer — meets at
//! a within-unit barrier before the next epoch opens. Signal-before-wait is
//! safe because the engine counts pending signals, and the end-of-epoch barrier
//! orders each epoch's signal strictly after the previous epoch's wait.
//!
//! Units with a single client degrade to a lone reader with a one-participant
//! barrier and no condvar traffic.

use syncron_core::request::{BarrierScope, SyncRequest};
use syncron_sim::rng::SimRng;
use syncron_sim::time::Time;
use syncron_sim::{Addr, GlobalCoreId, UnitId};
use syncron_system::address::AddressSpace;
use syncron_system::config::NdpConfig;
use syncron_system::workload::{Action, CoreProgram, Workload};

use super::zipf::ZipfSampler;
use super::{service_name, LogHistogram, OpenLoop, ServiceParams, ServiceShape};

/// Open-loop reads each reader serves per epoch.
const OPS_PER_EPOCH: u32 = 4;

/// Read-processing overhead in instructions.
const READ_INSTRS: u64 = 8;

/// The epoch-reclamation open-loop service workload.
#[derive(Clone, Copy, Debug)]
pub struct EpochService {
    params: ServiceParams,
}

impl EpochService {
    /// Creates the workload.
    pub fn new(params: ServiceParams) -> Self {
        EpochService { params }
    }
}

/// Per-unit synchronization variables.
#[derive(Clone, Copy, Debug)]
struct UnitVars {
    barrier: Addr,
    epoch_lock: Addr,
    cond: Addr,
    cond_lock: Addr,
    retired: Addr,
}

#[derive(Debug)]
struct ReaderProgram {
    open: OpenLoop,
    rng: SimRng,
    zipf: ZipfSampler,
    data: Vec<Addr>,
    units: u64,
    vars: UnitVars,
    participants: u32,
    /// True for the one reader per unit that wakes the reclaimer.
    signaler: bool,
    epochs_left: u32,
    reads_left_in_epoch: u32,
    phase: u8,
    key_addr: Addr,
    completing: bool,
}

impl ReaderProgram {
    fn barrier_action(&mut self) -> Action {
        self.epochs_left -= 1;
        self.reads_left_in_epoch = OPS_PER_EPOCH;
        self.phase = 0;
        Action::Sync(SyncRequest::BarrierWait {
            var: self.vars.barrier,
            participants: self.participants,
            scope: BarrierScope::WithinUnit,
        })
    }
}

impl CoreProgram for ReaderProgram {
    fn step(&mut self, _core: GlobalCoreId, now: Time) -> Action {
        match self.phase {
            0 => {
                if self.completing {
                    self.completing = false;
                    self.open.complete(now);
                }
                if self.epochs_left == 0 {
                    return Action::Done;
                }
                if self.reads_left_in_epoch > 0 && !self.open.exhausted() {
                    if let Some(idle) = self.open.admit(now) {
                        return idle;
                    }
                    let key = self.zipf.sample(&mut self.rng);
                    self.key_addr =
                        self.data[(key % self.units) as usize].offset(key / self.units * 64);
                    self.reads_left_in_epoch -= 1;
                    self.phase = 1;
                    return Action::Compute {
                        instrs: READ_INSTRS,
                    };
                }
                // Epoch closed for this reader.
                if self.signaler {
                    self.phase = 2;
                    Action::Sync(SyncRequest::CondSignal {
                        var: self.vars.cond,
                    })
                } else {
                    self.barrier_action()
                }
            }
            1 => {
                self.phase = 0;
                self.completing = true;
                Action::Load {
                    addr: self.key_addr,
                }
            }
            _ => self.barrier_action(),
        }
    }

    fn ops_completed(&self) -> u64 {
        self.open.ops
    }

    fn latency_histogram(&self) -> Option<&LogHistogram> {
        Some(&self.open.hist)
    }
}

/// One per unit (when the unit has ≥ 2 clients): sleeps on the condvar until the
/// epoch closes, retires garbage under the epoch lock, joins the barrier.
#[derive(Debug)]
struct ReclaimerProgram {
    vars: UnitVars,
    participants: u32,
    epochs_left: u32,
    phase: u8,
    ops: u64,
}

impl CoreProgram for ReclaimerProgram {
    fn step(&mut self, _core: GlobalCoreId, _now: Time) -> Action {
        if self.epochs_left == 0 {
            return Action::Done;
        }
        match self.phase {
            0 => {
                self.phase = 1;
                Action::Sync(SyncRequest::LockAcquire {
                    var: self.vars.cond_lock,
                })
            }
            1 => {
                self.phase = 2;
                Action::Sync(SyncRequest::CondWait {
                    var: self.vars.cond,
                    lock: self.vars.cond_lock,
                })
            }
            2 => {
                self.phase = 3;
                Action::Sync(SyncRequest::LockRelease {
                    var: self.vars.cond_lock,
                })
            }
            3 => {
                self.phase = 4;
                Action::Sync(SyncRequest::LockAcquire {
                    var: self.vars.epoch_lock,
                })
            }
            4 => {
                self.phase = 5;
                Action::Store {
                    addr: self.vars.retired,
                }
            }
            5 => {
                self.phase = 6;
                Action::Sync(SyncRequest::LockRelease {
                    var: self.vars.epoch_lock,
                })
            }
            _ => {
                self.phase = 0;
                self.epochs_left -= 1;
                self.ops += 1;
                Action::Sync(SyncRequest::BarrierWait {
                    var: self.vars.barrier,
                    participants: self.participants,
                    scope: BarrierScope::WithinUnit,
                })
            }
        }
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }
}

impl Workload for EpochService {
    fn shard_safe(&self) -> bool {
        // Programs keep all state private; cores interact only through
        // simulated synchronization.
        true
    }

    fn name(&self) -> String {
        service_name(ServiceShape::Epoch, &self.params)
    }

    fn build(
        &self,
        space: &mut AddressSpace,
        config: &NdpConfig,
        clients: &[GlobalCoreId],
    ) -> Vec<Box<dyn CoreProgram>> {
        let units = config.units as u64;
        let keys = self.params.keys.max(1);
        let data = space.allocate_partitioned(
            keys.div_ceil(units) * Addr::LINE_BYTES,
            syncron_system::address::DataClass::SharedReadWrite,
        );
        let unit_vars: Vec<UnitVars> = (0..config.units)
            .map(|u| {
                let home = UnitId(u as u8);
                UnitVars {
                    barrier: space.allocate_shared_rw(64, home),
                    epoch_lock: space.allocate_shared_rw(64, home),
                    cond: space.allocate_shared_rw(64, home),
                    cond_lock: space.allocate_shared_rw(64, home),
                    retired: space.allocate_shared_rw(64, home),
                }
            })
            .collect();
        let epochs = self.params.requests.div_ceil(OPS_PER_EPOCH).max(1);
        let per_unit = config.clients_per_unit() as u32;
        clients
            .iter()
            .enumerate()
            .map(|(i, client)| {
                let vars = unit_vars[client.unit.index()];
                let local = client.core.index() as u32;
                // First client of a multi-client unit reclaims; the next one is
                // the designated signaler.
                if per_unit >= 2 && local == 0 {
                    Box::new(ReclaimerProgram {
                        vars,
                        participants: per_unit,
                        epochs_left: epochs,
                        phase: 0,
                        ops: 0,
                    }) as Box<dyn CoreProgram>
                } else {
                    Box::new(ReaderProgram {
                        open: OpenLoop::new(
                            self.params.arrival,
                            config.seed ^ ((i as u64) << 24) ^ 0xE90C,
                            self.params.requests,
                            config.core_cycle(),
                        ),
                        rng: SimRng::seed_from(config.seed ^ ((i as u64) << 24) ^ 0x4EAD),
                        zipf: ZipfSampler::new(keys, self.params.zipf_s),
                        data: data.clone(),
                        units,
                        vars,
                        participants: per_unit,
                        signaler: per_unit >= 2 && local == 1,
                        epochs_left: epochs,
                        reads_left_in_epoch: OPS_PER_EPOCH,
                        phase: 0,
                        key_addr: Addr(0),
                        completing: false,
                    }) as Box<dyn CoreProgram>
                }
            })
            .collect()
    }
}
