//! Regenerates Figure 23 of the paper (overflow-management schemes).
fn main() {
    syncron_bench::experiments::datastructures::fig23().print();
}
