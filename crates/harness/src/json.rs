//! A small self-contained JSON document model, parser and writer.
//!
//! The build environment has no access to crates.io, so the harness ships its own
//! serialization layer instead of depending on `serde_json`. [`Value`] doubles as the
//! common document model for both JSON (this module) and the TOML subset
//! ([`crate::toml`]): scenario files in either syntax parse into the same tree and the
//! scenario/spec code only ever deals with [`Value`].
//!
//! Tables use a [`BTreeMap`] so serialization is deterministic, which the harness
//! relies on for stable exports and round-trip tests.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON/TOML document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (not expressible in TOML).
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (kept separate from floats so `64` survives a round trip exactly).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Table / object with deterministic (sorted) key order.
    Table(BTreeMap<String, Value>),
}

impl Value {
    /// Builds a table from key/value pairs.
    pub fn table<I, K>(pairs: I) -> Value
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        Value::Table(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a signed integer (floats with integral values also qualify).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as a float (integers also qualify).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a table, if it is one.
    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// Looks up `key` in a table value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_table().and_then(|t| t.get(key))
    }

    /// Serializes the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Serializes the value as pretty-printed JSON (two-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // Keep a decimal point so the value parses back as a float.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&format!("{f}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write_json(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Table(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.table(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn table(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Table(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Table(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Value::table([
            ("name", Value::str("fig10")),
            ("count", Value::Int(42)),
            ("ratio", Value::Float(1.5)),
            ("flag", Value::Bool(true)),
            (
                "items",
                Value::Array(vec![Value::Int(1), Value::str("two"), Value::Null]),
            ),
            ("nested", Value::table([("k", Value::str("v"))])),
        ]);
        for text in [doc.to_json(), doc.to_json_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = parse(r#"{"s": "a\"b\nA", "n": -3, "f": 2.5e2}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\nA"));
        assert_eq!(v.get("n").unwrap().as_i64(), Some(-3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(250.0));
    }

    #[test]
    fn integers_survive_round_trip_exactly() {
        let v = parse("[64, 9007199254740993]").unwrap();
        assert_eq!(v.as_array().unwrap()[1].as_i64(), Some(9007199254740993));
        assert_eq!(v.to_json(), "[64,9007199254740993]");
    }

    #[test]
    fn config_spec_signal_knobs_survive_json_round_trip() {
        let spec = crate::scenario::ConfigSpec {
            signal_coalescing: false,
            signal_backoff_ns: 1_000,
            ..Default::default()
        };
        let text = spec.to_value().to_json_pretty();
        let back = crate::scenario::ConfigSpec::from_value(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("hello").is_err());
        assert!(parse("{} x").is_err());
    }
}
