//! Regenerates Figure 14 of the paper (energy breakdown).
fn main() {
    syncron_bench::experiments::realapps::fig14().print();
}
