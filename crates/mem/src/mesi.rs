//! Directory-based MESI coherence model.
//!
//! The NDP system itself does **not** support hardware cache coherence; this model
//! exists to reproduce the paper's motivational baselines:
//!
//! * Figure 2 — a stack protected by a coherence-based lock (`mesi-lock`) implemented
//!   on top of a MESI directory protocol, compared to an ideal zero-cost lock, while
//!   varying the number of NDP cores and NDP units.
//! * Table 1 — throughput of TTAS and hierarchical ticket locks on a two-socket CPU.
//!
//! The model is a home-directory protocol: each cache line has a home NDP unit
//! (derived by the caller from the data placement); the directory at the home unit
//! tracks the set of sharers and the exclusive owner, serializes transactions to the
//! same line, and forwards/invalidates as needed. Latencies are composed from the
//! parameters in [`MesiParams`]; the caller converts the returned message counts into
//! network traffic and energy.

use syncron_sim::queueing::Serializer;
use syncron_sim::stats::Counter;
use syncron_sim::time::Time;
use syncron_sim::{Addr, FxHashMap, GlobalCoreId, UnitId};

/// The kind of coherent access a core performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoherentAccess {
    /// A load; requires the line in Shared or better state.
    Read,
    /// A store; requires exclusive ownership (Modified state).
    Write,
    /// An atomic read-modify-write (e.g. test-and-set, CAS, fetch-and-add); requires
    /// exclusive ownership and adds one ALU cycle.
    Rmw,
}

/// Latency parameters of the coherence fabric.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MesiParams {
    /// L1 lookup / fill latency (hit latency of the private cache).
    pub l1_latency: Time,
    /// Directory lookup and state-update latency at the home node.
    pub dir_latency: Time,
    /// One-way latency of a coherence message between two cores (or core and
    /// directory) in the **same** NDP unit / socket.
    pub intra_unit_msg: Time,
    /// One-way latency of a coherence message that crosses NDP units / sockets.
    pub inter_unit_msg: Time,
    /// DRAM access latency at the home node when no cache holds the line.
    pub mem_latency: Time,
    /// Extra latency of the atomic ALU operation for RMW accesses.
    pub rmw_latency: Time,
}

impl MesiParams {
    /// Parameters matching the simulated NDP system of Table 5: 4-cycle L1 at 2.5 GHz,
    /// a few-cycle directory, ~20 ns intra-unit round trips and 40 ns+ inter-unit
    /// messages, HBM-like memory latency.
    pub fn ndp_default() -> Self {
        MesiParams {
            l1_latency: Time::from_ps(1600),
            dir_latency: Time::from_ns(2),
            intra_unit_msg: Time::from_ns(8),
            inter_unit_msg: Time::from_ns(40),
            mem_latency: Time::from_ns(21),
            rmw_latency: Time::from_ps(400),
        }
    }

    /// Parameters representative of a two-socket server CPU (Table 1): fast on-chip
    /// coherence within a socket, expensive cross-socket (QPI/UPI-like) messages.
    pub fn cpu_two_socket() -> Self {
        MesiParams {
            l1_latency: Time::from_ps(1600),
            dir_latency: Time::from_ns(4),
            intra_unit_msg: Time::from_ns(15),
            inter_unit_msg: Time::from_ns(120),
            mem_latency: Time::from_ns(80),
            rmw_latency: Time::from_ps(800),
        }
    }

    fn msg(&self, a: UnitId, b: UnitId) -> (Time, bool) {
        if a == b {
            (self.intra_unit_msg, false)
        } else {
            (self.inter_unit_msg, true)
        }
    }
}

/// Result of one coherent access.
#[derive(Clone, Copy, Debug, Default)]
pub struct MesiOutcome {
    /// Latency of the access, as seen by the requesting core.
    pub latency: Time,
    /// Whether the access hit in the requester's cache without a directory transaction.
    pub local_hit: bool,
    /// Coherence messages exchanged within an NDP unit.
    pub intra_msgs: u32,
    /// Coherence messages exchanged across NDP units.
    pub inter_msgs: u32,
    /// DRAM accesses performed at the home node.
    pub mem_accesses: u32,
    /// Number of remote caches invalidated.
    pub invalidations: u32,
}

/// Per-line directory state.
#[derive(Clone, Debug, Default)]
struct DirEntry {
    /// Bitmask of cores holding the line in Shared state.
    sharers: u64,
    /// Core holding the line in Modified/Exclusive state, if any.
    owner: Option<GlobalCoreId>,
    /// Serializes directory transactions to this line.
    busy: Serializer,
}

/// Counters maintained by a [`MesiDirectory`].
#[derive(Clone, Copy, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MesiStats {
    /// Accesses satisfied locally without a directory transaction.
    pub local_hits: Counter,
    /// Accesses that required a directory transaction.
    pub dir_transactions: Counter,
    /// Total invalidation messages sent.
    pub invalidations: Counter,
    /// Total DRAM accesses performed on behalf of coherence misses.
    pub mem_accesses: Counter,
}

/// A home-directory MESI coherence protocol model over the NDP cores.
///
/// # Example
///
/// ```
/// use syncron_mem::mesi::{CoherentAccess, MesiDirectory, MesiParams};
/// use syncron_sim::{Addr, CoreId, GlobalCoreId, Time, UnitId};
///
/// let mut dir = MesiDirectory::new(2, 4, MesiParams::ndp_default());
/// let c0 = GlobalCoreId::new(UnitId(0), CoreId(0));
/// let c1 = GlobalCoreId::new(UnitId(1), CoreId(0));
/// let lock = Addr(0x80);
///
/// // First RMW misses everywhere and goes to memory.
/// let first = dir.access(Time::ZERO, c0, lock, CoherentAccess::Rmw, UnitId(0));
/// assert_eq!(first.mem_accesses, 1);
/// // A remote core's RMW must invalidate the previous owner across units.
/// let second = dir.access(first.latency, c1, lock, CoherentAccess::Rmw, UnitId(0));
/// assert!(second.invalidations >= 1);
/// assert!(second.inter_msgs > 0);
/// ```
#[derive(Clone, Debug)]
pub struct MesiDirectory {
    params: MesiParams,
    cores_per_unit: usize,
    total_cores: usize,
    /// Per-line directory entries, keyed by line index. Uses the deterministic
    /// fixed-seed [`FxHashMap`] like every other hot-path simulator map: the std
    /// default (SipHash with a per-process random seed) costs tens of
    /// nanoseconds per lookup and randomizes iteration order between processes.
    lines: FxHashMap<u64, DirEntry>,
    stats: MesiStats,
}

impl MesiDirectory {
    /// Creates a directory for `units × cores_per_unit` cores.
    ///
    /// # Panics
    ///
    /// Panics if the total number of cores exceeds 64 (the sharer bitmask width) or is zero.
    pub fn new(units: usize, cores_per_unit: usize, params: MesiParams) -> Self {
        let total = units * cores_per_unit;
        assert!(total > 0 && total <= 64, "MESI model supports 1..=64 cores");
        MesiDirectory {
            params,
            cores_per_unit,
            total_cores: total,
            lines: FxHashMap::default(),
            stats: MesiStats::default(),
        }
    }

    /// The parameters this directory was built with.
    pub fn params(&self) -> &MesiParams {
        &self.params
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MesiStats {
        &self.stats
    }

    fn bit(&self, core: GlobalCoreId) -> u64 {
        1u64 << core.flat_index(self.cores_per_unit)
    }

    /// Performs one coherent access by `core` to `addr`, whose directory lives at
    /// `home`. Returns the latency and message/energy-relevant counts.
    pub fn access(
        &mut self,
        now: Time,
        core: GlobalCoreId,
        addr: Addr,
        kind: CoherentAccess,
        home: UnitId,
    ) -> MesiOutcome {
        let params = self.params;
        let cores_per_unit = self.cores_per_unit;
        let total_cores = self.total_cores;
        let my_bit = self.bit(core);
        let line = addr.line_index();
        let entry = self.lines.entry(line).or_default();

        let mut out = MesiOutcome {
            latency: params.l1_latency,
            ..MesiOutcome::default()
        };

        let has_shared = entry.sharers & my_bit != 0;
        let is_owner = entry.owner == Some(core);

        // Local hit fast paths (no directory transaction).
        match kind {
            CoherentAccess::Read if has_shared || is_owner => {
                out.local_hit = true;
                self.stats.local_hits.inc();
                return out;
            }
            CoherentAccess::Write | CoherentAccess::Rmw if is_owner => {
                out.local_hit = true;
                out.latency += params.rmw_latency;
                self.stats.local_hits.inc();
                return out;
            }
            _ => {}
        }

        self.stats.dir_transactions.inc();

        // Request to the home directory.
        let (req, req_remote) = params.msg(core.unit, home);
        out.latency += req;
        add_msg(&mut out, req_remote);

        // Directory transactions to the same line serialize.
        let request_arrival = now + out.latency;
        let dir_start = entry.busy.acquire(request_arrival, params.dir_latency);
        out.latency = (dir_start - now) + params.dir_latency;

        let owner = entry.owner;
        let sharers = entry.sharers;

        match kind {
            CoherentAccess::Read => {
                if let Some(o) = owner {
                    if o != core {
                        // Forward to the owner, owner supplies data and downgrades.
                        let (fwd, fwd_remote) = params.msg(home, o.unit);
                        let (data, data_remote) = params.msg(o.unit, core.unit);
                        out.latency += fwd + params.l1_latency + data;
                        add_msg(&mut out, fwd_remote);
                        add_msg(&mut out, data_remote);
                        entry.sharers |= 1u64 << o.flat_index(cores_per_unit);
                        entry.owner = None;
                    }
                } else {
                    // Clean miss: fetch from memory at the home node.
                    let (data, data_remote) = params.msg(home, core.unit);
                    out.latency += params.mem_latency + data;
                    add_msg(&mut out, data_remote);
                    out.mem_accesses += 1;
                }
                entry.sharers |= my_bit;
            }
            CoherentAccess::Write | CoherentAccess::Rmw => {
                // Invalidate every other copy; the requester waits for the farthest ack.
                let mut worst_inval = Time::ZERO;
                let mut to_invalidate: Vec<GlobalCoreId> = Vec::new();
                for b in 0..total_cores {
                    let mask = 1u64 << b;
                    if sharers & mask != 0 && mask != my_bit {
                        to_invalidate.push(GlobalCoreId::from_flat(b, cores_per_unit));
                    }
                }
                if let Some(o) = owner {
                    if o != core && !to_invalidate.contains(&o) {
                        to_invalidate.push(o);
                    }
                }
                for victim in &to_invalidate {
                    let (inv, inv_remote) = params.msg(home, victim.unit);
                    let (ack, ack_remote) = params.msg(victim.unit, home);
                    add_msg(&mut out, inv_remote);
                    add_msg(&mut out, ack_remote);
                    out.invalidations += 1;
                    worst_inval = worst_inval.max(inv + params.l1_latency + ack);
                }
                out.latency += worst_inval;

                // Data source: previous owner (dirty) or memory.
                if let Some(o) = owner {
                    if o != core {
                        let (data, data_remote) = params.msg(o.unit, core.unit);
                        out.latency += params.l1_latency + data;
                        add_msg(&mut out, data_remote);
                    }
                } else {
                    let (data, data_remote) = params.msg(home, core.unit);
                    out.latency += params.mem_latency + data;
                    add_msg(&mut out, data_remote);
                    out.mem_accesses += 1;
                }

                entry.sharers = my_bit;
                entry.owner = Some(core);
                if kind == CoherentAccess::Rmw {
                    out.latency += params.rmw_latency;
                }
            }
        }

        self.stats.invalidations.add(out.invalidations as u64);
        self.stats.mem_accesses.add(out.mem_accesses as u64);
        out
    }

    /// Returns the current exclusive owner of the line containing `addr`, if any
    /// (useful for assertions in tests).
    pub fn owner_of(&self, addr: Addr) -> Option<GlobalCoreId> {
        self.lines.get(&addr.line_index()).and_then(|e| e.owner)
    }

    /// Returns the number of cores sharing the line containing `addr`.
    pub fn sharer_count(&self, addr: Addr) -> u32 {
        self.lines
            .get(&addr.line_index())
            .map(|e| e.sharers.count_ones())
            .unwrap_or(0)
    }
}

fn add_msg(out: &mut MesiOutcome, remote: bool) {
    if remote {
        out.inter_msgs += 1;
    } else {
        out.intra_msgs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncron_sim::CoreId;

    fn core(unit: u8, c: u8) -> GlobalCoreId {
        GlobalCoreId::new(UnitId(unit), CoreId(c))
    }

    fn dir() -> MesiDirectory {
        MesiDirectory::new(4, 16, MesiParams::ndp_default())
    }

    #[test]
    fn read_after_read_hits_locally() {
        let mut d = dir();
        let a = Addr(0x100);
        let miss = d.access(Time::ZERO, core(0, 0), a, CoherentAccess::Read, UnitId(0));
        assert!(!miss.local_hit);
        assert_eq!(miss.mem_accesses, 1);
        let hit = d.access(miss.latency, core(0, 0), a, CoherentAccess::Read, UnitId(0));
        assert!(hit.local_hit);
        assert_eq!(hit.latency, MesiParams::ndp_default().l1_latency);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = dir();
        let a = Addr(0x200);
        for c in 0..4 {
            d.access(Time::ZERO, core(0, c), a, CoherentAccess::Read, UnitId(0));
        }
        assert_eq!(d.sharer_count(a), 4);
        let w = d.access(
            Time::from_us(1),
            core(1, 0),
            a,
            CoherentAccess::Write,
            UnitId(0),
        );
        assert_eq!(w.invalidations, 4);
        assert_eq!(d.sharer_count(a), 1);
        assert_eq!(d.owner_of(a), Some(core(1, 0)));
    }

    #[test]
    fn remote_rmw_costlier_than_local_rmw() {
        let p = MesiParams::ndp_default();
        // Owner in unit 0; requester in unit 0 vs unit 3.
        let mut d_local = dir();
        let mut d_remote = dir();
        let a = Addr(0x300);
        d_local.access(Time::ZERO, core(0, 0), a, CoherentAccess::Rmw, UnitId(0));
        d_remote.access(Time::ZERO, core(0, 0), a, CoherentAccess::Rmw, UnitId(0));
        let local = d_local.access(
            Time::from_us(1),
            core(0, 1),
            a,
            CoherentAccess::Rmw,
            UnitId(0),
        );
        let remote = d_remote.access(
            Time::from_us(1),
            core(3, 1),
            a,
            CoherentAccess::Rmw,
            UnitId(0),
        );
        assert!(remote.latency > local.latency);
        assert!(remote.inter_msgs > 0);
        assert_eq!(local.inter_msgs, 0);
        assert!(local.latency > p.l1_latency);
    }

    #[test]
    fn owner_write_hit_is_cheap() {
        let mut d = dir();
        let a = Addr(0x400);
        d.access(Time::ZERO, core(2, 5), a, CoherentAccess::Write, UnitId(2));
        let again = d.access(
            Time::from_us(1),
            core(2, 5),
            a,
            CoherentAccess::Rmw,
            UnitId(2),
        );
        assert!(again.local_hit);
        assert_eq!(again.intra_msgs + again.inter_msgs, 0);
    }

    #[test]
    fn read_after_remote_write_forwards_from_owner() {
        let mut d = dir();
        let a = Addr(0x500);
        d.access(Time::ZERO, core(0, 0), a, CoherentAccess::Write, UnitId(1));
        let r = d.access(
            Time::from_us(1),
            core(1, 3),
            a,
            CoherentAccess::Read,
            UnitId(1),
        );
        // Data comes from the owner's cache, not memory.
        assert_eq!(r.mem_accesses, 0);
        assert!(!r.local_hit);
        assert_eq!(d.owner_of(a), None);
        assert_eq!(d.sharer_count(a), 2);
    }

    #[test]
    fn directory_serializes_contending_transactions() {
        let mut d = dir();
        let a = Addr(0x600);
        // Two cores issue an RMW at the same instant: the second transaction must wait
        // for the first at the directory, so its latency is strictly larger.
        let first = d.access(Time::ZERO, core(0, 0), a, CoherentAccess::Rmw, UnitId(0));
        let second = d.access(Time::ZERO, core(0, 1), a, CoherentAccess::Rmw, UnitId(0));
        assert!(second.latency > first.latency);
    }

    #[test]
    #[should_panic]
    fn too_many_cores_rejected() {
        let _ = MesiDirectory::new(8, 16, MesiParams::ndp_default());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use syncron_sim::SimRng;

    /// Protocol invariant: a line never has an owner and additional sharers at the
    /// same time (MESI: M is exclusive), and the owner is always also tracked.
    ///
    /// Deterministic stand-in for a proptest property (no crates.io access).
    #[test]
    fn single_writer_invariant() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0x3E51_0000 + case);
            let ops = 1 + rng.gen_range(199) as usize;
            let mut d = MesiDirectory::new(2, 4, MesiParams::ndp_default());
            let mut now = Time::ZERO;
            for _ in 0..ops {
                let flat = rng.gen_range(8) as usize;
                let line = rng.gen_range(4);
                let write = rng.gen_bool(0.5);
                let core = GlobalCoreId::from_flat(flat, 4);
                let addr = Addr(line * 64);
                let kind = if write {
                    CoherentAccess::Write
                } else {
                    CoherentAccess::Read
                };
                let out = d.access(now, core, addr, kind, UnitId((line % 2) as u8));
                now += out.latency;
                if write {
                    assert_eq!(d.owner_of(addr), Some(core));
                    assert_eq!(d.sharer_count(addr), 1);
                }
            }
        }
    }
}
