//! Cross-crate integration tests: workloads running on the full simulated NDP system
//! through the public `syncron` facade.

use syncron::prelude::*;
use syncron::workloads::datastructures::coarse::Stack;
use syncron::workloads::datastructures::{self, DsConfig};
use syncron::workloads::graph::{GraphAlgo, GraphApp, GraphInput};
use syncron::workloads::micro::{BarrierMicrobench, LockMicrobench};
use syncron::workloads::timeseries::TimeSeries;

fn config(kind: MechanismKind, units: usize, cores: usize) -> NdpConfig {
    NdpConfig::builder()
        .units(units)
        .cores_per_unit(cores)
        .mechanism(kind)
        .build()
        .expect("valid config")
}

fn tiny_graph() -> GraphInput {
    GraphInput {
        name: "it",
        vertices: 400,
        avg_degree: 6,
        rmat: true,
    }
}

#[test]
fn every_mechanism_runs_every_workload_class() {
    for kind in MechanismKind::ALL {
        let cfg = config(kind, 2, 4);
        let micro = syncron::system::run_workload(&cfg, &LockMicrobench::new(100, 8));
        assert!(micro.completed, "{kind:?} lock micro");

        let ds = datastructures::by_name("hash-table", 10).unwrap();
        let ds_report = syncron::system::run_workload(&cfg, ds.as_ref());
        assert!(ds_report.completed, "{kind:?} hash table");

        let graph =
            syncron::system::run_workload(&cfg, &GraphApp::new(GraphAlgo::Bfs, tiny_graph()));
        assert!(graph.completed, "{kind:?} bfs");

        let ts = TimeSeries::air().with_diagonals_per_core(1);
        let ts_report = syncron::system::run_workload(&cfg, &ts);
        assert!(ts_report.completed, "{kind:?} time series");
    }
}

#[test]
fn paper_ordering_holds_under_high_contention() {
    // Figure 11 (stack): Central <= Hier <= SynCron <= Ideal in throughput at 60 cores.
    let stack = Stack::new(DsConfig::new(10_000, 25));
    let mut throughputs = Vec::new();
    for kind in MechanismKind::COMPARED {
        let report = syncron::system::run_workload(&config(kind, 4, 16), &stack);
        assert!(report.completed, "{kind:?}");
        throughputs.push((kind, report.ops_per_ms()));
    }
    let central = throughputs[0].1;
    let hier = throughputs[1].1;
    let syncron = throughputs[2].1;
    let ideal = throughputs[3].1;
    assert!(hier > central, "Hier {hier} should beat Central {central}");
    assert!(syncron > hier, "SynCron {syncron} should beat Hier {hier}");
    assert!(
        ideal >= syncron,
        "Ideal {ideal} must be an upper bound for SynCron {syncron}"
    );
}

#[test]
fn syncron_reduces_inter_unit_traffic_and_energy_vs_central() {
    // Figures 14 and 15: under contention, SynCron's hierarchical aggregation (one
    // global message on behalf of all local waiters) cuts remote traffic and energy
    // relative to the Central scheme, which sends every request across the system.
    let wl = Stack::new(DsConfig::new(10_000, 25));
    let central = syncron::system::run_workload(&config(MechanismKind::Central, 4, 16), &wl);
    let syncron = syncron::system::run_workload(&config(MechanismKind::SynCron, 4, 16), &wl);
    assert!(
        syncron.traffic.inter_unit_bytes < central.traffic.inter_unit_bytes,
        "SynCron {} vs Central {} inter-unit bytes",
        syncron.traffic.inter_unit_bytes,
        central.traffic.inter_unit_bytes
    );
    assert!(syncron.energy.total_pj() < central.energy.total_pj());
}

#[test]
fn barriers_scale_with_more_units() {
    // Figure 13 flavour: adding NDP units (and thus cores) should not slow down a
    // fixed-iteration barrier microbenchmark by more than the growth in participants.
    let one = syncron::system::run_workload(
        &config(MechanismKind::SynCron, 1, 16),
        &BarrierMicrobench::new(500, 10),
    );
    let four = syncron::system::run_workload(
        &config(MechanismKind::SynCron, 4, 16),
        &BarrierMicrobench::new(500, 10),
    );
    assert!(one.completed && four.completed);
    // 4x the cores should cost far less than 4x the time for the same per-core work.
    assert!(four.sim_time.as_ps() < one.sim_time.as_ps() * 3);
}

#[test]
fn st_occupancy_is_reported_for_real_apps() {
    let ts = TimeSeries::air().with_diagonals_per_core(2);
    let report = syncron::system::run_workload(&config(MechanismKind::SynCron, 4, 16), &ts);
    assert!(report.completed);
    assert!(
        report.sync.st_max_occupancy > 0.0,
        "ST occupancy should be tracked"
    );
    assert!(report.sync.st_max_occupancy <= 1.0);
    assert!(report.sync.st_avg_occupancy <= report.sync.st_max_occupancy);
}

#[test]
fn reports_are_deterministic_across_runs() {
    let wl = GraphApp::new(GraphAlgo::Cc, tiny_graph());
    let cfg = config(MechanismKind::SynCron, 2, 8);
    let a = syncron::system::run_workload(&cfg, &wl);
    let b = syncron::system::run_workload(&cfg, &wl);
    assert_eq!(a.sim_time, b.sim_time);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.sync_requests, b.sync_requests);
}
