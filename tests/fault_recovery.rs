//! Single-drop recovery property tests.
//!
//! Under an injected message drop, every mechanism kind (all 7) must still
//! drive every request to completion through the timeout/retransmission path —
//! across seeds, machine geometries, drop positions, and the sequential vs
//! sharded (conservative-PDES) executors. The sharded run must additionally be
//! bit-identical to the sequential one: recovery is part of the simulation, not
//! a side effect of the host schedule.

use syncron::prelude::*;
use syncron::workloads::micro::SyncPrimitive;

/// A small closed-loop lock microbenchmark with fault injection dropping the
/// `drop_nth`-th original message on every directed link.
fn faulted_scenario(
    mechanism: MechanismKind,
    units: usize,
    cores: usize,
    seed: u64,
    sim_threads: usize,
    drop_nth: u64,
) -> Scenario {
    let mut config = ConfigSpec::default()
        .with_geometry(units, cores)
        .with_mechanism(mechanism)
        .with_fault(FaultConfig {
            enabled: true,
            drop_nth,
            ..FaultConfig::default()
        })
        .with_sim_threads(sim_threads);
    config.seed = seed;
    Scenario::new(
        format!(
            "{}.u{units}x{cores}.s{seed}.t{sim_threads}.d{drop_nth}",
            mechanism.name()
        ),
        config,
        WorkloadSpec::Micro {
            primitive: SyncPrimitive::Lock,
            interval: 80,
            iterations: 6,
        },
    )
}

/// The faults-off twin of [`faulted_scenario`], used as the work reference.
fn clean_scenario(mechanism: MechanismKind, units: usize, cores: usize, seed: u64) -> Scenario {
    let mut config = ConfigSpec::default()
        .with_geometry(units, cores)
        .with_mechanism(mechanism);
    config.seed = seed;
    Scenario::new(
        format!("{}.u{units}x{cores}.s{seed}.clean", mechanism.name()),
        config,
        WorkloadSpec::Micro {
            primitive: SyncPrimitive::Lock,
            interval: 80,
            iterations: 6,
        },
    )
}

#[test]
fn every_mechanism_recovers_from_single_drops() {
    for mechanism in MechanismKind::ALL {
        let mut drops_fired = 0u64;
        for (units, cores) in [(2, 4), (4, 4)] {
            for seed in [1u64, 7] {
                // The clean twin pins how much work the run must accomplish.
                let clean = clean_scenario(mechanism, units, cores, seed)
                    .run()
                    .expect("clean run");
                assert!(clean.completed);

                for drop_nth in [1u64, 3] {
                    let sequential = faulted_scenario(mechanism, units, cores, seed, 1, drop_nth)
                        .run()
                        .expect("sequential faulted run");
                    let label =
                        format!("{} u{units}x{cores} s{seed} d{drop_nth}", mechanism.name());

                    // (a) The run completes: no request is lost to the drop.
                    assert!(sequential.completed, "{label}: did not recover");
                    // (b) It does exactly the clean run's work — same ops, same
                    // synchronization completions; only timing may move.
                    assert_eq!(sequential.total_ops, clean.total_ops, "{label}: lost ops");
                    assert_eq!(
                        sequential.sync.completions, clean.sync.completions,
                        "{label}: lost sync completions"
                    );
                    // (c) Every drop was recovered by exactly one retransmission.
                    let stats = sequential.faults.expect("fault stats when enabled");
                    assert_eq!(
                        stats.dropped, stats.retransmitted,
                        "{label}: drops and retransmissions disagree"
                    );
                    drops_fired += stats.dropped;
                    if mechanism == MechanismKind::Ideal {
                        // Ideal completes synchronization without messages, so
                        // there is nothing to drop — the property is vacuous
                        // but the run must still be clean.
                        assert_eq!(stats.dropped, 0, "{label}: Ideal sent messages?");
                    } else {
                        // The first original on every used link always drops;
                        // the third may not exist on short-lived links.
                        if drop_nth == 1 {
                            assert!(stats.dropped >= 1, "{label}: no drop ever fired");
                        }
                        // Recovery costs time: the faulted run cannot be faster
                        // than its clean twin.
                        assert!(
                            sequential.sim_time >= clean.sim_time,
                            "{label}: recovery took no time"
                        );
                    }

                    // (d) The sharded executor agrees bit-for-bit.
                    let sharded = faulted_scenario(mechanism, units, cores, seed, 4, drop_nth)
                        .run()
                        .expect("sharded faulted run");
                    if let Some(field) = sequential.divergence_from(&sharded) {
                        panic!("{label}: sharded faulted run diverged in {field}");
                    }
                }
            }
        }
        if mechanism != MechanismKind::Ideal {
            assert!(
                drops_fired > 0,
                "{}: no drop fired anywhere in the matrix",
                mechanism.name()
            );
        }
    }
}

#[test]
fn recovery_holds_for_every_primitive_under_syncron() {
    // The drop/retry path is request-kind-agnostic; pin that for all four
    // primitives (lock, barrier, semaphore, condvar) under the full scheme.
    for primitive in SyncPrimitive::ALL {
        let mut config = ConfigSpec::default()
            .with_geometry(4, 4)
            .with_mechanism(MechanismKind::SynCron)
            .with_fault(FaultConfig {
                enabled: true,
                drop_nth: 1,
                ..FaultConfig::default()
            });
        config.seed = 3;
        let scenario = Scenario::new(
            format!("prim-{}", primitive.name()),
            config,
            WorkloadSpec::Micro {
                primitive,
                interval: 80,
                iterations: 6,
            },
        );
        let report = scenario.run().expect("faulted run");
        assert!(report.completed, "{}: did not recover", primitive.name());
        let stats = report.faults.expect("fault stats when enabled");
        assert!(stats.dropped >= 1, "{}: no drop fired", primitive.name());
        assert_eq!(
            stats.dropped,
            stats.retransmitted,
            "{}: unbalanced recovery",
            primitive.name()
        );
    }
}
