//! Parallel scenario execution.
//!
//! [`Runner`] replaces the old `run_many(Vec<(NdpConfig, Box<dyn Workload>)>)` pattern
//! with a proper work-queue thread pool over [`Scenario`]s:
//!
//! * work is claimed lock-free through a shared atomic cursor (no `Mutex<Vec<_>>`
//!   popping) and each worker rebuilds its workload from the spec, so nothing boxed
//!   crosses threads;
//! * a progress callback fires after every finished scenario;
//! * results come back as a [`RunSet`] keyed by scenario label, independent of thread
//!   count and execution order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::HarnessError;
use crate::runset::RunSet;
use crate::scenario::Scenario;
use syncron_system::IncompleteReason;

/// Renders a panic payload as text for [`IncompleteReason::Panicked`].
///
/// `panic!("...")` payloads are `String` or `&'static str`; anything else
/// (a custom `panic_any` value) degrades to a fixed marker rather than
/// losing the failure.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Progress report handed to the [`Runner`] callback after each finished scenario.
#[derive(Clone, Debug)]
pub struct Progress {
    /// Number of scenarios finished so far (including this one).
    pub finished: usize,
    /// Total number of scenarios in the run.
    pub total: usize,
    /// Label of the scenario that just finished.
    pub label: String,
    /// Whether the finished run completed before hitting the event safety limit.
    pub completed: bool,
}

type ProgressFn = dyn Fn(&Progress) + Send + Sync;

/// Parallel scenario runner.
pub struct Runner {
    threads: usize,
    progress: Option<Box<ProgressFn>>,
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("threads", &self.threads)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

impl Runner {
    /// Creates a runner that uses all available host parallelism: the thread
    /// count is resolved immediately from [`std::thread::available_parallelism`]
    /// (falling back to 1 when the host cannot report it), never lazily — what
    /// [`Runner::thread_count`] answers is what [`Runner::run`] will use.
    pub fn new() -> Self {
        Runner {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            progress: None,
        }
    }

    /// Caps the number of worker threads.
    ///
    /// `threads(0)` is deliberately clamped to 1 rather than rejected: a runner
    /// always has at least one worker, so a computed cap that reaches zero (for
    /// example `cores - reserved`) degrades to serial execution instead of
    /// silently running nothing.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The number of worker threads [`Runner::run`] will spawn (before the cap to
    /// the scenario count).
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Installs a progress callback, invoked after every finished scenario.
    ///
    /// The callback may fire concurrently from several worker threads.
    pub fn on_progress(mut self, callback: impl Fn(&Progress) + Send + Sync + 'static) -> Self {
        self.progress = Some(Box::new(callback));
        self
    }

    /// Runs every scenario and returns the reports keyed by scenario label.
    ///
    /// Fails fast — before simulating anything — if a label is duplicated, a
    /// workload spec names an unknown workload, or a config requests an impossible
    /// machine geometry. Results are deterministic: each simulation is
    /// single-threaded and seeded by its scenario alone, so the returned [`RunSet`]
    /// is identical for any thread count.
    pub fn run(&self, scenarios: &[Scenario]) -> Result<RunSet, HarnessError> {
        self.run_with(scenarios, |config, workload| {
            syncron_system::run_workload(config, workload)
        })
    }

    /// [`Runner::run`] with the simulation entry point injected, so tests can
    /// exercise the panic-isolation path with a deterministically panicking
    /// "simulator" (no validated scenario panics on its own).
    fn run_with(
        &self,
        scenarios: &[Scenario],
        simulate: impl Fn(
                &syncron_system::NdpConfig,
                &dyn syncron_system::workload::Workload,
            ) -> syncron_system::RunReport
            + Sync,
    ) -> Result<RunSet, HarnessError> {
        // Validate labels, specs and configs up front.
        let mut seen = std::collections::BTreeSet::new();
        for scenario in scenarios {
            if !seen.insert(scenario.label.as_str()) {
                return Err(HarnessError::DuplicateLabel(scenario.label.clone()));
            }
            scenario.workload.build()?;
            scenario.config.to_ndp_config()?;
        }
        if scenarios.is_empty() {
            return Ok(RunSet::empty());
        }

        let threads = self.threads.min(scenarios.len());

        let cursor = AtomicUsize::new(0);
        let finished = AtomicUsize::new(0);
        let total = scenarios.len();
        let progress = self.progress.as_deref();

        let mut slots: Vec<Option<syncron_system::RunReport>> = Vec::new();
        slots.resize_with(total, || None);
        let slot_cells: Vec<std::sync::Mutex<Option<syncron_system::RunReport>>> =
            slots.into_iter().map(std::sync::Mutex::new).collect();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    // Lock-free work claiming: each scenario index is handed to
                    // exactly one worker.
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let scenario = &scenarios[index];
                    let workload = scenario
                        .workload
                        .build()
                        .expect("spec validated before launch");
                    let config = scenario
                        .config
                        .to_ndp_config()
                        .expect("config validated before launch");
                    // Panic isolation: a scenario that panics inside the
                    // simulator must not take the whole sweep down. The
                    // failure is recorded as a zeroed report carrying
                    // `IncompleteReason::Panicked`, and the remaining
                    // scenarios keep running on this worker.
                    let report =
                        catch_unwind(AssertUnwindSafe(|| simulate(&config, workload.as_ref())))
                            .unwrap_or_else(|payload| {
                                syncron_system::RunReport::failed(
                                    workload.name(),
                                    config.mechanism.kind.name(),
                                    IncompleteReason::Panicked(panic_message(payload)),
                                )
                            });
                    let completed = report.completed;
                    *slot_cells[index].lock().expect("slot lock") = Some(report);
                    let done = finished.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(callback) = progress {
                        callback(&Progress {
                            finished: done,
                            total,
                            label: scenario.label.clone(),
                            completed,
                        });
                    }
                });
            }
        });

        let reports: Vec<syncron_system::RunReport> = slot_cells
            .into_iter()
            .map(|cell| {
                cell.into_inner()
                    .expect("slot lock")
                    .expect("every slot filled by the pool")
            })
            .collect();
        RunSet::from_pairs(scenarios.iter().cloned().zip(reports))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ConfigSpec;
    use crate::spec::WorkloadSpec;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use syncron_core::MechanismKind;
    use syncron_workloads::micro::SyncPrimitive;

    fn tiny_scenarios(n: usize) -> Vec<Scenario> {
        (0..n)
            .map(|i| {
                Scenario::new(
                    format!("s{i}"),
                    ConfigSpec::default()
                        .with_geometry(2, 4)
                        .with_mechanism(MechanismKind::SynCron),
                    WorkloadSpec::Micro {
                        primitive: SyncPrimitive::Lock,
                        interval: 50 + i as u64,
                        iterations: 4,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn runs_everything_and_keys_by_label() {
        let scenarios = tiny_scenarios(5);
        let set = Runner::new().threads(3).run(&scenarios).unwrap();
        assert_eq!(set.len(), 5);
        for s in &scenarios {
            let entry = set.get(&s.label).expect("keyed lookup");
            assert!(entry.report.completed);
            assert_eq!(entry.scenario.label, s.label);
        }
    }

    #[test]
    fn progress_callback_sees_every_scenario() {
        let scenarios = tiny_scenarios(4);
        let count = Arc::new(AtomicUsize::new(0));
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let (count2, seen2) = (Arc::clone(&count), Arc::clone(&seen));
        let _ = Runner::new()
            .threads(2)
            .on_progress(move |p| {
                count2.fetch_add(1, Ordering::Relaxed);
                assert!(p.finished <= p.total);
                seen2.lock().unwrap().push(p.label.clone());
            })
            .run(&scenarios)
            .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 4);
        let mut labels = seen.lock().unwrap().clone();
        labels.sort();
        assert_eq!(labels, vec!["s0", "s1", "s2", "s3"]);
    }

    #[test]
    fn default_thread_count_comes_from_host_parallelism() {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(Runner::new().thread_count(), host);
        assert!(Runner::new().thread_count() >= 1);
    }

    #[test]
    fn zero_threads_clamps_to_one_and_still_runs() {
        let runner = Runner::new().threads(0);
        assert_eq!(runner.thread_count(), 1);
        let scenarios = tiny_scenarios(3);
        let set = runner.run(&scenarios).unwrap();
        assert_eq!(set.len(), 3);
        assert!(set.entries().iter().all(|e| e.report.completed));
        // Explicit caps are preserved as-is.
        assert_eq!(Runner::new().threads(7).thread_count(), 7);
    }

    #[test]
    fn duplicate_labels_fail_fast() {
        let mut scenarios = tiny_scenarios(2);
        scenarios[1].label = scenarios[0].label.clone();
        assert!(matches!(
            Runner::new().run(&scenarios),
            Err(HarnessError::DuplicateLabel(_))
        ));
    }

    #[test]
    fn invalid_specs_fail_before_running() {
        let scenarios = vec![Scenario::new(
            "bad",
            ConfigSpec::default(),
            WorkloadSpec::DataStructure {
                name: "nope".into(),
                ops_per_core: 1,
            },
        )];
        assert!(matches!(
            Runner::new().run(&scenarios),
            Err(HarnessError::Spec(_))
        ));
    }

    #[test]
    fn invalid_configs_fail_before_running() {
        let scenarios = vec![Scenario::new(
            "bad-geometry",
            ConfigSpec::default().with_geometry(4, 100_000),
            WorkloadSpec::Micro {
                primitive: SyncPrimitive::Lock,
                interval: 100,
                iterations: 4,
            },
        )];
        match Runner::new().run(&scenarios) {
            Err(HarnessError::Config(m)) => assert!(m.contains("cores_per_unit"), "{m}"),
            other => panic!("expected a config error, got {other:?}"),
        }
    }

    #[test]
    fn a_panicking_scenario_is_recorded_and_the_sweep_continues() {
        let scenarios = tiny_scenarios(4);
        // The panic victim is identified by its built workload name, which is
        // what the injected simulator sees.
        let victim = scenarios[1].workload.build().unwrap().name();
        let victim2 = victim.clone();
        let completions = Arc::new(std::sync::Mutex::new(Vec::new()));
        let completions2 = Arc::clone(&completions);
        let runner = Runner::new().threads(2).on_progress(move |p| {
            completions2
                .lock()
                .unwrap()
                .push((p.label.clone(), p.completed));
        });
        let set = runner
            .run_with(&scenarios, move |config, workload| {
                if workload.name() == victim2 {
                    panic!("injected simulator fault in {}", victim2);
                }
                syncron_system::run_workload(config, workload)
            })
            .unwrap();

        // All four scenarios are present; only the victim is marked failed.
        assert_eq!(set.len(), 4);
        let failed = &set.get("s1").unwrap().report;
        assert!(!failed.completed);
        match &failed.incomplete {
            Some(IncompleteReason::Panicked(msg)) => {
                assert!(msg.contains("injected simulator fault"), "{msg}");
            }
            other => panic!("expected a panicked reason, got {other:?}"),
        }
        assert_eq!(failed.workload, victim);
        assert_eq!(failed.total_ops, 0);
        for label in ["s0", "s2", "s3"] {
            assert!(set.get(label).unwrap().report.completed, "{label}");
        }
        // The progress callback saw the failure too (and every scenario fired).
        let seen = completions.lock().unwrap().clone();
        assert_eq!(seen.len(), 4);
        assert!(seen.iter().any(|(l, c)| l == "s1" && !c));
        assert!(seen.iter().filter(|(_, c)| *c).count() == 3);
    }

    #[test]
    fn panic_payloads_render_as_text() {
        assert_eq!(panic_message(Box::new("static str")), "static str");
        assert_eq!(panic_message(Box::new(String::from("owned"))), "owned");
        assert_eq!(panic_message(Box::new(42_u64)), "non-string panic payload");
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let scenarios = tiny_scenarios(6);
        let a = Runner::new().threads(1).run(&scenarios).unwrap();
        let b = Runner::new().threads(4).run(&scenarios).unwrap();
        for s in &scenarios {
            let ra = &a.get(&s.label).unwrap().report;
            let rb = &b.get(&s.label).unwrap().report;
            assert_eq!(ra.sim_time, rb.sim_time, "{}", s.label);
            assert_eq!(ra.total_ops, rb.total_ops);
            assert_eq!(ra.sync_requests, rb.sync_requests);
        }
    }
}
