//! The shared physical address space and data placement.
//!
//! The NDP units share one physical address space (Section 2.1). Each unit owns a
//! contiguous 4 GB window (Table 5: 4 GB per stack/DIMM group), and the unit that owns
//! an address is its **home unit** — the unit whose DRAM holds the data and whose
//! Synchronization Engine is the *Master SE* for synchronization variables at that
//! address.
//!
//! Under software-assisted coherence every allocation carries a [`DataClass`]:
//! thread-private and shared read-only data are cacheable in the cores' L1s, shared
//! read-write data is not (Section 2.1).

pub use syncron_mem::cache::DataClass;
use syncron_sim::{Addr, UnitId};

/// Size of the address window owned by each NDP unit: 4 GB (Table 5).
pub const UNIT_SPAN: u64 = 1 << 32;

/// One allocated region of the address space.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Region {
    /// First address of the region.
    pub base: Addr,
    /// Size in bytes.
    pub bytes: u64,
    /// Coherence classification of the region.
    pub class: DataClass,
    /// Home NDP unit.
    pub home: UnitId,
}

impl Region {
    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.value() >= self.base.value() && addr.value() < self.base.value() + self.bytes
    }
}

/// The allocator / resolver for the shared NDP address space.
///
/// # Example
///
/// ```
/// use syncron_system::address::{AddressSpace, DataClass};
/// use syncron_sim::UnitId;
///
/// let mut space = AddressSpace::new(4);
/// let a = space.allocate(1024, DataClass::SharedReadWrite, UnitId(2));
/// assert_eq!(space.home_unit(a), UnitId(2));
/// assert_eq!(space.class_of(a), DataClass::SharedReadWrite);
/// ```
#[derive(Clone, Debug)]
pub struct AddressSpace {
    units: usize,
    next_free: Vec<u64>,
    regions: Vec<Region>,
}

impl AddressSpace {
    /// Creates an empty address space for `units` NDP units.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero.
    pub fn new(units: usize) -> Self {
        assert!(units > 0, "at least one NDP unit is required");
        AddressSpace {
            units,
            // Skip the first page of each unit so address 0 is never handed out.
            next_free: (0..units).map(|u| u as u64 * UNIT_SPAN + 4096).collect(),
            regions: Vec::new(),
        }
    }

    /// Number of NDP units this space spans.
    pub fn units(&self) -> usize {
        self.units
    }

    /// Allocates `bytes` of data of class `class` homed in `home`. The allocation is
    /// cache-line aligned.
    ///
    /// # Panics
    ///
    /// Panics if `home` is out of range or the unit's 4 GB window is exhausted.
    pub fn allocate(&mut self, bytes: u64, class: DataClass, home: UnitId) -> Addr {
        assert!(home.index() < self.units, "home unit {home} out of range");
        let bytes = bytes.max(1).next_multiple_of(Addr::LINE_BYTES);
        let cursor = &mut self.next_free[home.index()];
        let base = *cursor;
        let limit = (home.index() as u64 + 1) * UNIT_SPAN;
        assert!(
            base + bytes <= limit,
            "NDP unit {home} address window exhausted"
        );
        *cursor += bytes;
        let region = Region {
            base: Addr(base),
            bytes,
            class,
            home,
        };
        self.regions.push(region);
        region.base
    }

    /// Allocates shared read-write data (uncacheable) homed in `home`.
    pub fn allocate_shared_rw(&mut self, bytes: u64, home: UnitId) -> Addr {
        self.allocate(bytes, DataClass::SharedReadWrite, home)
    }

    /// Allocates shared read-only data (cacheable) homed in `home`.
    pub fn allocate_shared_ro(&mut self, bytes: u64, home: UnitId) -> Addr {
        self.allocate(bytes, DataClass::SharedReadOnly, home)
    }

    /// Allocates thread-private data (cacheable) homed in `home`.
    pub fn allocate_private(&mut self, bytes: u64, home: UnitId) -> Addr {
        self.allocate(bytes, DataClass::Private, home)
    }

    /// Allocates one chunk of `bytes_per_unit` per NDP unit and returns the base of
    /// each, used for data statically partitioned across units (graphs, output arrays).
    pub fn allocate_partitioned(&mut self, bytes_per_unit: u64, class: DataClass) -> Vec<Addr> {
        (0..self.units)
            .map(|u| self.allocate(bytes_per_unit, class, UnitId(u as u8)))
            .collect()
    }

    /// The NDP unit that owns `addr` (derived from the address bits, so it is defined
    /// even for addresses outside any allocated region).
    pub fn home_unit(&self, addr: Addr) -> UnitId {
        UnitId(((addr.value() / UNIT_SPAN) as usize % self.units) as u8)
    }

    /// The coherence class of `addr`. Unallocated addresses default to shared
    /// read-write (the conservative, uncacheable choice).
    pub fn class_of(&self, addr: Addr) -> DataClass {
        self.regions
            .iter()
            .rev()
            .find(|r| r.contains(addr))
            .map(|r| r.class)
            .unwrap_or(DataClass::SharedReadWrite)
    }

    /// Number of allocated regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Total bytes allocated on `unit`.
    pub fn allocated_on(&self, unit: UnitId) -> u64 {
        self.regions
            .iter()
            .filter(|r| r.home == unit)
            .map(|r| r.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_line_aligned_and_disjoint() {
        let mut space = AddressSpace::new(4);
        let a = space.allocate(100, DataClass::Private, UnitId(0));
        let b = space.allocate(100, DataClass::Private, UnitId(0));
        assert_eq!(a.value() % 64, 0);
        assert_eq!(b.value() % 64, 0);
        assert!(
            b.value() >= a.value() + 128,
            "second allocation overlaps the first"
        );
    }

    #[test]
    fn home_unit_follows_address_window() {
        let mut space = AddressSpace::new(4);
        for u in 0..4u8 {
            let a = space.allocate(64, DataClass::SharedReadWrite, UnitId(u));
            assert_eq!(space.home_unit(a), UnitId(u));
        }
    }

    #[test]
    fn class_resolution() {
        let mut space = AddressSpace::new(2);
        let private = space.allocate_private(256, UnitId(0));
        let ro = space.allocate_shared_ro(256, UnitId(0));
        let rw = space.allocate_shared_rw(256, UnitId(1));
        assert_eq!(space.class_of(private), DataClass::Private);
        assert_eq!(space.class_of(ro.offset(128)), DataClass::SharedReadOnly);
        assert_eq!(space.class_of(rw), DataClass::SharedReadWrite);
        // Unallocated addresses are conservatively uncacheable.
        assert_eq!(
            space.class_of(Addr(3 * UNIT_SPAN + 64)),
            DataClass::SharedReadWrite
        );
    }

    #[test]
    fn partitioned_allocation_spans_all_units() {
        let mut space = AddressSpace::new(4);
        let parts = space.allocate_partitioned(4096, DataClass::SharedReadWrite);
        assert_eq!(parts.len(), 4);
        for (u, p) in parts.iter().enumerate() {
            assert_eq!(space.home_unit(*p), UnitId(u as u8));
        }
        assert_eq!(space.region_count(), 4);
        assert_eq!(space.allocated_on(UnitId(0)), 4096);
    }

    #[test]
    #[should_panic]
    fn out_of_range_home_rejected() {
        let mut space = AddressSpace::new(2);
        space.allocate(64, DataClass::Private, UnitId(5));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use syncron_sim::SimRng;

    /// Allocated regions never overlap and always resolve to their own class/home.
    ///
    /// Deterministic stand-in for a proptest property (the build environment has no
    /// crates.io access): many randomized allocation sequences driven by the in-tree
    /// RNG.
    #[test]
    fn no_overlap() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0xA11C_0000 + case);
            let count = 1 + rng.gen_range(59) as usize;
            let mut space = AddressSpace::new(4);
            let mut allocated: Vec<(Addr, u64, UnitId)> = Vec::new();
            for _ in 0..count {
                let bytes = 1 + rng.gen_range(9_999);
                let unit = rng.gen_range(4) as u8;
                let a = space.allocate(bytes, DataClass::Private, UnitId(unit));
                let rounded = bytes.max(1).next_multiple_of(64);
                for (prev, pbytes, _) in &allocated {
                    let disjoint =
                        a.value() + rounded <= prev.value() || prev.value() + pbytes <= a.value();
                    assert!(disjoint, "overlap between {a} and {prev}");
                }
                assert_eq!(space.home_unit(a), UnitId(unit));
                allocated.push((a, rounded, UnitId(unit)));
            }
        }
    }
}
