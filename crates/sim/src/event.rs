//! Discrete-event queue.
//!
//! The simulator advances time by repeatedly popping the earliest pending event.
//! Events scheduled for the same timestamp are delivered in FIFO order (insertion
//! order), which keeps simulations deterministic and makes protocol races easy to
//! reason about in tests.
//!
//! Two interchangeable scheduler backends implement that contract:
//!
//! * [`SchedulerKind::Calendar`] (the default) — a hierarchical calendar queue
//!   (time wheel). Near-future events land in O(1) buckets whose width is a power
//!   of two of picoseconds (sized from the core cycle via
//!   [`CalendarParams::for_cycle`]); far-future events spill into a sorted overflow
//!   heap that refills the wheel on rotation.
//! * [`SchedulerKind::Heap`] — the original `BinaryHeap` implementation, kept as
//!   the reference scheduler for differential testing and as the baseline of the
//!   simulator-throughput benchmarks.
//!
//! Both backends pop events in exactly the same order — ascending `(time, push
//! sequence)` — so simulations are bit-identical under either. The randomized
//! differential tests at the bottom of this module pin that equivalence.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which event-queue backend a simulation uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchedulerKind {
    /// Hierarchical calendar queue (time wheel) — O(1) pushes and amortized O(1)
    /// pops for the near-future events that dominate a machine simulation.
    #[default]
    Calendar,
    /// Binary heap — O(log n) pushes and pops; the reference implementation the
    /// calendar queue is differentially tested against.
    Heap,
}

impl SchedulerKind {
    /// All backends, for sweeps and differential tests.
    pub const ALL: [SchedulerKind; 2] = [SchedulerKind::Calendar, SchedulerKind::Heap];

    /// The backend's stable name (`calendar` / `heap`), as used by scenario files.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Calendar => "calendar",
            SchedulerKind::Heap => "heap",
        }
    }
}

/// Geometry of the calendar-queue time wheel.
///
/// The wheel covers a horizon of `buckets × bucket_width` picoseconds; events
/// beyond the horizon spill into the sorted overflow heap and are moved into
/// buckets when the wheel rotates into their lap. Both dimensions are rounded up
/// to powers of two so the hot-path bucket mapping is a shift and a mask, never a
/// division.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CalendarParams {
    /// Width of one bucket in picoseconds (rounded up to a power of two).
    pub bucket_width_ps: u64,
    /// Number of buckets in the wheel (rounded up to a power of two).
    pub buckets: usize,
}

impl CalendarParams {
    /// Default geometry: 512 ps buckets × 1024 buckets ≈ 0.5 µs horizon — enough
    /// for the paper's DRAM (~50 ns), link (40–500 ns) and backoff latencies, so
    /// the overwhelming majority of machine events stay inside the wheel, while
    /// the bucket headers (~24 KB) stay cache-resident. Longer latencies (the
    /// 9 µs link sweeps) spill to the overflow heap, which handles them exactly.
    pub const DEFAULT: CalendarParams = CalendarParams {
        bucket_width_ps: 512,
        buckets: 1024,
    };

    /// Sizes the wheel from a core clock cycle: one bucket spans (the power-of-two
    /// round-up of) one cycle, so consecutive core steps land in distinct buckets
    /// and same-cycle events share one. Absurd cycles are clamped so the
    /// round-up cannot overflow (the wheel clamps again against its bucket
    /// count when built).
    pub fn for_cycle(cycle: Time) -> Self {
        CalendarParams {
            bucket_width_ps: cycle.as_ps().clamp(1, 1 << 53).next_power_of_two(),
            buckets: CalendarParams::DEFAULT.buckets,
        }
    }
}

impl Default for CalendarParams {
    fn default() -> Self {
        CalendarParams::DEFAULT
    }
}

/// A time-ordered, insertion-stable event queue.
///
/// # Example
///
/// ```
/// use syncron_sim::event::EventQueue;
/// use syncron_sim::time::Time;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(5), "b");
/// q.push(Time::from_ns(1), "a");
/// q.push(Time::from_ns(5), "c");
/// assert_eq!(q.pop(), Some((Time::from_ns(1), "a")));
/// assert_eq!(q.pop(), Some((Time::from_ns(5), "b")));
/// assert_eq!(q.pop(), Some((Time::from_ns(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    seq: u64,
    popped: u64,
}

#[derive(Debug)]
enum Backend<E> {
    Heap(BinaryHeap<Reverse<Entry<E>>>),
    Calendar(Calendar<E>),
}

#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// The time wheel: `buckets` slots of `1 << width_shift` picoseconds each, scanned
/// by a cursor, plus a sorted overflow heap for events past the current lap.
///
/// Bucket discipline (chosen for the machine's traffic shapes — huge
/// same-timestamp bursts at wake-ups, plus short low-latency chains):
///
/// * events for buckets the cursor has not reached yet are **appended unsorted**
///   (O(1); a 4096-core wake burst costs 4096 appends, not 4096 sorted inserts);
/// * when the cursor reaches a bucket, it is sorted **descending** by
///   `(time, seq)` exactly once, and then drained from the back with `Vec::pop`
///   (O(1) per event);
/// * events that land in (or before) the bucket currently being drained go to the
///   small `current` min-heap instead; each pop takes the smaller of the bucket's
///   back and the heap's top, so late arrivals still come out in exact
///   `(time, seq)` order.
///
/// Invariants:
///
/// * every event in `current` precedes every event in unreached buckets of the
///   current lap, which precede every overflow event;
/// * `(time, seq)` keys are unique, so the descending unstable sort and the heap
///   merge reproduce the reference heap's pop order bit for bit.
struct Calendar<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// Late arrivals for the bucket currently being drained (including past-time
    /// pushes, which must pop before anything else).
    current: BinaryHeap<Reverse<Entry<E>>>,
    /// Whether `buckets[cursor]` has been sorted since the cursor reached it.
    cursor_sorted: bool,
    /// log2 of the bucket width in picoseconds.
    width_shift: u32,
    /// `buckets.len() - 1` (bucket count is a power of two).
    bucket_mask: u64,
    /// log2 of the horizon (`width_shift + log2(buckets)`).
    lap_shift: u32,
    /// Index of the bucket currently being drained.
    cursor: usize,
    /// Which lap of the wheel the cursor is in (`time / horizon`).
    lap: u64,
    /// Number of events currently in buckets plus `current` (excludes overflow).
    wheel_len: usize,
    /// One bit per bucket: set while the bucket holds events. Lets the cursor
    /// jump over runs of empty buckets a word at a time instead of probing each.
    occupancy: Vec<u64>,
    overflow: BinaryHeap<Reverse<Entry<E>>>,
}

impl<E> std::fmt::Debug for Calendar<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Calendar")
            .field("bucket_width_ps", &(1u64 << self.width_shift))
            .field("buckets", &self.buckets.len())
            .field("wheel_len", &self.wheel_len)
            .field("overflow_len", &self.overflow.len())
            .finish()
    }
}

impl<E> Calendar<E> {
    /// Largest permitted bucket count: a million buckets is already absurd, and
    /// the cap keeps `log2(buckets)` small enough to bound the lap shift.
    const MAX_BUCKETS: usize = 1 << 20;

    fn new(params: CalendarParams) -> Self {
        // Clamp both dimensions so every shift below stays strictly under 64
        // bits. Without the clamp, extreme-but-constructible parameters (e.g.
        // `bucket_width_ps: u64::MAX`, whose `next_power_of_two` overflows to 0
        // in release builds, or widths where `width_shift + log2(buckets)`
        // reaches 64) made `bucket_of`/`lap_end_ps` use masked shift amounts
        // and silently corrupted pop order. Clamped wheels stay correct — an
        // oversized width just means more events share a bucket.
        let buckets = params
            .buckets
            .clamp(2, Calendar::<E>::MAX_BUCKETS)
            .next_power_of_two();
        let bucket_bits = buckets.trailing_zeros();
        let max_width_shift = 63 - bucket_bits;
        let width = params
            .bucket_width_ps
            .clamp(1, 1u64 << max_width_shift)
            .next_power_of_two();
        let width_shift = width.trailing_zeros();
        let lap_shift = width_shift + bucket_bits;
        debug_assert!(lap_shift < 64);
        let mut wheel = Vec::new();
        wheel.resize_with(buckets, Vec::new);
        Calendar {
            buckets: wheel,
            current: BinaryHeap::new(),
            cursor_sorted: true,
            width_shift,
            bucket_mask: buckets as u64 - 1,
            lap_shift,
            cursor: 0,
            lap: 0,
            wheel_len: 0,
            occupancy: vec![0u64; buckets.div_ceil(64)],
            overflow: BinaryHeap::new(),
        }
    }

    #[inline]
    fn mark_occupied(&mut self, idx: usize) {
        self.occupancy[idx / 64] |= 1u64 << (idx % 64);
    }

    #[inline]
    fn mark_empty(&mut self, idx: usize) {
        self.occupancy[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Index of the first occupied bucket at or past `from`, scanning the
    /// occupancy bitmap a word at a time.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let mut word_index = from / 64;
        if word_index >= self.occupancy.len() {
            return None;
        }
        let mut word = self.occupancy[word_index] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(word_index * 64 + word.trailing_zeros() as usize);
            }
            word_index += 1;
            if word_index == self.occupancy.len() {
                return None;
            }
            word = self.occupancy[word_index];
        }
    }

    /// First picosecond past the current lap; everything at or beyond it overflows.
    /// Saturates for the final lap of the `u64` range, where `Time::MAX` sentinels
    /// live ([`Calendar::refill`] compensates by draining the whole overflow there).
    #[inline]
    fn lap_end_ps(&self) -> u64 {
        (self.lap + 1).saturating_mul(1u64 << self.lap_shift)
    }

    /// First picosecond past the bucket currently being drained (saturating in
    /// the final lap, where the last bucket has no end).
    #[inline]
    fn cursor_end_ps(&self) -> u64 {
        (self.lap << self.lap_shift).saturating_add(((self.cursor as u64) + 1) << self.width_shift)
    }

    #[inline]
    fn bucket_of(&self, ps: u64) -> usize {
        ((ps >> self.width_shift) & self.bucket_mask) as usize
    }

    fn push(&mut self, entry: Entry<E>) {
        let t = entry.at.as_ps();
        if t >= self.lap_end_ps() {
            self.overflow.push(Reverse(entry));
            return;
        }
        self.wheel_len += 1;
        if t < self.cursor_end_ps() {
            // The cursor bucket is (potentially) mid-drain; late arrivals — and
            // past-time pushes — merge through the small heap.
            self.current.push(Reverse(entry));
        } else {
            let idx = self.bucket_of(t);
            self.buckets[idx].push(entry);
            self.mark_occupied(idx);
        }
    }

    /// Moves overflow events belonging to the current lap into their buckets. In
    /// the saturated final lap every remaining overflow event belongs to it (there
    /// is no lap beyond), including those at exactly `u64::MAX`.
    fn refill(&mut self) {
        let end = self.lap_end_ps();
        let cursor_end = self.cursor_end_ps();
        while self
            .overflow
            .peek()
            .is_some_and(|Reverse(e)| e.at.as_ps() < end || end == u64::MAX)
        {
            let Reverse(entry) = self.overflow.pop().expect("peeked entry");
            let t = entry.at.as_ps();
            self.wheel_len += 1;
            if t < cursor_end {
                self.current.push(Reverse(entry));
            } else {
                let idx = self.bucket_of(t);
                self.buckets[idx].push(entry);
                self.mark_occupied(idx);
            }
        }
    }

    /// Positions the cursor on the bucket holding the earliest event (sorting it
    /// on first contact). Returns `false` when the queue is empty.
    fn advance(&mut self) -> bool {
        loop {
            if !self.current.is_empty() || !self.buckets[self.cursor].is_empty() {
                if !self.cursor_sorted {
                    // Unique (time, seq) keys: unstable descending sort is
                    // deterministic; draining from the back yields ascending order.
                    self.buckets[self.cursor].sort_unstable_by_key(|e| Reverse(e.key()));
                    self.cursor_sorted = true;
                }
                return true;
            }
            if self.wheel_len == 0 {
                // Jump straight to the overflow minimum's lap (skipping empty
                // laps) and pull its lap's events into the wheel.
                let Some(Reverse(min)) = self.overflow.peek() else {
                    return false;
                };
                let t = min.at.as_ps();
                self.lap = t >> self.lap_shift;
                self.cursor = self.bucket_of(t);
                self.cursor_sorted = false;
                self.refill();
                continue;
            }
            // The wheel still holds events, so some later bucket of this lap is
            // non-empty (nothing can be behind the cursor); the occupancy bitmap
            // finds it a word at a time.
            self.cursor = self
                .next_occupied(self.cursor + 1)
                .expect("wheel_len > 0 but no bucket at or past the cursor holds an event");
            self.cursor_sorted = false;
        }
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        if !self.advance() {
            return None;
        }
        let take_current = match (self.current.peek(), self.buckets[self.cursor].last()) {
            (Some(Reverse(c)), Some(b)) => c.key() < b.key(),
            (Some(_), None) => true,
            (None, _) => false,
        };
        let entry = if take_current {
            self.current.pop().expect("peeked entry").0
        } else {
            let entry = self.buckets[self.cursor]
                .pop()
                .expect("advance stopped on a non-empty bucket");
            if self.buckets[self.cursor].is_empty() {
                self.mark_empty(self.cursor);
            }
            entry
        };
        self.wheel_len -= 1;
        Some(entry)
    }

    fn peek_time(&mut self) -> Option<Time> {
        if !self.advance() {
            return None;
        }
        let bucket_min = self.buckets[self.cursor].last().map(|e| e.key());
        let current_min = self.current.peek().map(|Reverse(e)| e.key());
        match (current_min, bucket_min) {
            (Some(c), Some(b)) => Some(c.min(b).0),
            (Some(c), None) => Some(c.0),
            (None, Some(b)) => Some(b.0),
            (None, None) => unreachable!("advance returned true on an empty wheel"),
        }
    }

    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.current.clear();
        self.cursor_sorted = true;
        // Rewind the wheel: with a stale lap/cursor every later push at a small
        // timestamp would classify as "behind the cursor" and fall back to the
        // `current` heap forever, silently degrading the queue into the binary
        // heap it replaces.
        self.cursor = 0;
        self.lap = 0;
        self.wheel_len = 0;
        self.occupancy.fill(0);
        self.overflow.clear();
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty event queue using the default calendar-queue scheduler.
    pub fn new() -> Self {
        EventQueue::with_scheduler(SchedulerKind::Calendar)
    }

    /// Creates an empty event queue with the given scheduler backend.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        let backend = match kind {
            SchedulerKind::Calendar => Backend::Calendar(Calendar::new(CalendarParams::DEFAULT)),
            SchedulerKind::Heap => Backend::Heap(BinaryHeap::new()),
        };
        EventQueue {
            backend,
            seq: 0,
            popped: 0,
        }
    }

    /// Creates a calendar queue with an explicit wheel geometry (see
    /// [`CalendarParams::for_cycle`] for the machine's sizing rule).
    pub fn calendar(params: CalendarParams) -> Self {
        EventQueue {
            backend: Backend::Calendar(Calendar::new(params)),
            seq: 0,
            popped: 0,
        }
    }

    /// Creates an empty event queue with pre-allocated capacity (for the heap
    /// backend the whole heap; for the calendar backend the overflow heap).
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = EventQueue::new();
        q.reserve(cap);
        q
    }

    /// Pre-allocates room for `cap` additional events (heap backend) or `cap`
    /// additional far-future spills (calendar backend).
    pub fn reserve(&mut self, cap: usize) {
        match &mut self.backend {
            Backend::Heap(heap) => heap.reserve(cap),
            Backend::Calendar(cal) => cal.overflow.reserve(cap),
        }
    }

    /// The scheduler backend this queue runs on.
    pub fn scheduler(&self) -> SchedulerKind {
        match &self.backend {
            Backend::Heap(_) => SchedulerKind::Heap,
            Backend::Calendar(_) => SchedulerKind::Calendar,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { at, seq, event };
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(Reverse(entry)),
            Backend::Calendar(cal) => cal.push(entry),
        }
    }

    /// Schedules `event` at `at` with a caller-chosen tiebreak key instead of the
    /// queue's internal push sequence.
    ///
    /// Events pop in ascending `(time, key)` order, so a caller that derives keys
    /// from its own stable numbering (e.g. per-shard counters in a partitioned
    /// simulation) gets an equal-timestamp order that is independent of *which
    /// queue* an event was pushed into. Keys must be unique per timestamp; a
    /// queue should be driven either entirely through [`EventQueue::push`] or
    /// entirely through `push_keyed` — mixing the two may collide keys.
    pub fn push_keyed(&mut self, at: Time, key: u64, event: E) {
        self.seq += 1; // keep scheduled_total() meaningful as a push count
        let entry = Entry {
            at,
            seq: key,
            event,
        };
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(Reverse(entry)),
            Backend::Calendar(cal) => cal.push(entry),
        }
    }

    /// Removes and returns the earliest pending event, or `None` if the queue is empty.
    ///
    /// Events with equal timestamps come back in push order (FIFO).
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let entry = match &mut self.backend {
            Backend::Heap(heap) => heap.pop().map(|Reverse(e)| e),
            Backend::Calendar(cal) => cal.pop(),
        }?;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// Returns the timestamp of the earliest pending event without removing it.
    ///
    /// Takes `&mut self` because the calendar backend may advance its wheel cursor
    /// over drained buckets to locate the minimum (the queue's contents are not
    /// modified).
    pub fn peek_time(&mut self) -> Option<Time> {
        match &mut self.backend {
            Backend::Heap(heap) => heap.peek().map(|Reverse(e)| e.at),
            Backend::Calendar(cal) => cal.peek_time(),
        }
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Calendar(cal) => cal.len(),
        }
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events scheduled so far (including already-delivered ones).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    /// Total number of events delivered so far.
    pub fn delivered_total(&self) -> u64 {
        self.popped
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(heap) => heap.clear(),
            Backend::Calendar(cal) => cal.clear(),
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_backends() -> [EventQueue<i32>; 2] {
        [
            EventQueue::with_scheduler(SchedulerKind::Calendar),
            EventQueue::with_scheduler(SchedulerKind::Heap),
        ]
    }

    #[test]
    fn orders_by_time() {
        for mut q in both_backends() {
            q.push(Time::from_ps(30), 3);
            q.push(Time::from_ps(10), 1);
            q.push(Time::from_ps(20), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3], "{:?}", q.scheduler());
        }
    }

    #[test]
    fn fifo_within_same_timestamp() {
        for mut q in both_backends() {
            for i in 0..100 {
                q.push(Time::from_ps(7), i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{:?}", q.scheduler());
        }
    }

    #[test]
    fn counts_scheduled_and_delivered() {
        let mut q = EventQueue::new();
        q.push(Time::ZERO, ());
        q.push(Time::ZERO, ());
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.delivered_total(), 0);
        q.pop();
        assert_eq!(q.delivered_total(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        for mut q in both_backends() {
            assert_eq!(q.peek_time(), None);
            q.push(Time::from_ns(9), 1);
            q.push(Time::from_ns(2), 2);
            assert_eq!(q.peek_time(), Some(Time::from_ns(2)));
            // Peeking does not consume.
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some((Time::from_ns(2), 2)));
        }
    }

    #[test]
    fn default_is_calendar() {
        let q: EventQueue<()> = EventQueue::default();
        assert_eq!(q.scheduler(), SchedulerKind::Calendar);
        assert_eq!(
            EventQueue::<()>::with_scheduler(SchedulerKind::Heap).scheduler(),
            SchedulerKind::Heap
        );
    }

    #[test]
    fn calendar_params_round_to_powers_of_two() {
        // Table 5's 2.5 GHz core cycle (400 ps) rounds up to a 512 ps bucket.
        let p = CalendarParams::for_cycle(Time::from_ps(400));
        assert_eq!(p.bucket_width_ps, 512);
        let p = CalendarParams::for_cycle(Time::from_ps(1000));
        assert_eq!(p.bucket_width_ps, 1024);
        // Degenerate cycles stay valid.
        let p = CalendarParams::for_cycle(Time::ZERO);
        assert_eq!(p.bucket_width_ps, 1);
    }

    #[test]
    fn far_future_events_spill_and_return() {
        // Horizon of the default wheel is 512 ps * 1024 = ~0.5 us; schedule far
        // beyond it, then in front of it, and check global order.
        let mut q = EventQueue::calendar(CalendarParams::DEFAULT);
        q.push(Time::from_ms(5), 'z');
        q.push(Time::from_us(100), 'y');
        q.push(Time::from_ps(10), 'a');
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Time::from_ps(10), 'a')));
        assert_eq!(q.pop(), Some((Time::from_us(100), 'y')));
        assert_eq!(q.pop(), Some((Time::from_ms(5), 'z')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn time_max_sentinel_is_accepted() {
        let mut q = EventQueue::calendar(CalendarParams::DEFAULT);
        q.push(Time::MAX, "never");
        q.push(Time::ZERO, "now");
        assert_eq!(q.pop(), Some((Time::ZERO, "now")));
        assert_eq!(q.pop(), Some((Time::MAX, "never")));
    }

    #[test]
    fn past_time_pushes_pop_first() {
        // After draining up to t=1000, a push at t=5 (earlier than events already
        // delivered) must still come out before anything later — exactly what the
        // heap reference does.
        for mut q in both_backends() {
            q.push(Time::from_ps(1000), 1);
            assert_eq!(q.pop(), Some((Time::from_ps(1000), 1)));
            q.push(Time::from_ps(2000), 2);
            q.push(Time::from_ps(5), 3);
            assert_eq!(q.pop(), Some((Time::from_ps(5), 3)), "{:?}", q.scheduler());
            assert_eq!(q.pop(), Some((Time::from_ps(2000), 2)));
        }
    }

    #[test]
    fn clear_rewinds_the_wheel() {
        // After draining to a large simulated time, clear() must rewind the
        // cursor/lap so a reused queue files small-timestamp pushes back into
        // buckets (stale wheel state would silently degrade every later push
        // into the current-heap fallback). Behaviourally: order stays exact.
        let mut q = EventQueue::calendar(CalendarParams::DEFAULT);
        q.push(Time::from_ms(3), 1);
        assert_eq!(q.pop(), Some((Time::from_ms(3), 1)));
        q.push(Time::from_ms(5), 2);
        q.clear();
        assert!(q.is_empty());
        q.push(Time::from_ps(700), 20);
        q.push(Time::from_ps(20), 10);
        assert_eq!(q.pop(), Some((Time::from_ps(20), 10)));
        assert_eq!(q.pop(), Some((Time::from_ps(700), 20)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn extreme_wheel_geometries_are_clamped_and_stay_ordered() {
        // Parameters that used to overflow the shift arithmetic (u64::MAX width
        // wraps next_power_of_two to 0 in release; 1<<60 width with 1024
        // buckets pushes the lap shift past 64): the wheel must clamp and keep
        // exact pop order instead of silently corrupting it.
        for params in [
            CalendarParams {
                bucket_width_ps: u64::MAX,
                buckets: 2,
            },
            CalendarParams {
                bucket_width_ps: 1 << 60,
                buckets: 1024,
            },
            CalendarParams {
                bucket_width_ps: 512,
                buckets: usize::MAX,
            },
        ] {
            let mut q = EventQueue::calendar(params);
            let times = [
                u64::MAX,
                0,
                1 << 40,
                3,
                (1 << 62) + 7,
                1 << 40,
                u64::MAX - 1,
            ];
            for (i, &t) in times.iter().enumerate() {
                q.push(Time::from_ps(t), i);
            }
            let mut sorted: Vec<(u64, usize)> = times.iter().copied().zip(0..times.len()).collect();
            sorted.sort();
            for &(t, idx) in &sorted {
                assert_eq!(q.pop(), Some((Time::from_ps(t), idx)), "params {params:?}");
            }
            assert_eq!(q.pop(), None);
        }
        // for_cycle clamps absurd cycles instead of overflowing the round-up.
        let p = CalendarParams::for_cycle(Time::from_ps(u64::MAX));
        assert!(p.bucket_width_ps.is_power_of_two());
    }

    #[test]
    fn tiny_wheels_still_order_correctly() {
        // A 2-bucket, 1 ps wheel forces constant rotations and overflow traffic.
        let mut q = EventQueue::calendar(CalendarParams {
            bucket_width_ps: 1,
            buckets: 2,
        });
        for i in (0..64u64).rev() {
            q.push(Time::from_ps(i * 3), i);
        }
        let mut last = None;
        while let Some((t, _)) = q.pop() {
            if let Some(prev) = last {
                assert!(t >= prev);
            }
            last = Some(t);
        }
        assert_eq!(q.delivered_total(), 64);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::SimRng;

    // Deterministic stand-ins for proptest properties (no crates.io access).

    /// Popping always yields events in non-decreasing time order, and events with
    /// equal timestamps preserve insertion order.
    #[test]
    fn pops_are_monotone_and_stable() {
        for kind in SchedulerKind::ALL {
            for case in 0..64u64 {
                let mut rng = SimRng::seed_from(0xE4E7_0000 + case);
                let count = 1 + rng.gen_range(199) as usize;
                let times: Vec<u64> = (0..count).map(|_| rng.gen_range(50)).collect();
                let mut q = EventQueue::with_scheduler(kind);
                for (i, t) in times.iter().enumerate() {
                    q.push(Time::from_ps(*t), i);
                }
                let mut last: Option<(Time, usize)> = None;
                while let Some((t, idx)) = q.pop() {
                    if let Some((lt, lidx)) = last {
                        assert!(t >= lt);
                        if t == lt {
                            assert!(idx > lidx);
                        }
                    }
                    last = Some((t, idx));
                }
            }
        }
    }

    /// Every pushed event is delivered exactly once.
    #[test]
    fn conservation() {
        for kind in SchedulerKind::ALL {
            for case in 0..64u64 {
                let mut rng = SimRng::seed_from(0xC0_5E4B + case);
                let count = rng.gen_range(300) as usize;
                let times: Vec<u64> = (0..count).map(|_| rng.gen_range(1000)).collect();
                let mut q = EventQueue::with_scheduler(kind);
                for (i, t) in times.iter().enumerate() {
                    q.push(Time::from_ps(*t), i);
                }
                let mut seen = vec![false; times.len()];
                while let Some((_, idx)) = q.pop() {
                    assert!(!seen[idx]);
                    seen[idx] = true;
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    /// The calendar queue and the reference heap pop identically under randomized
    /// push/pop interleavings: same-timestamp bursts, far-future spills past the
    /// horizon, pushes exactly on bucket/lap boundaries, and pushes at times
    /// earlier than events already delivered.
    #[test]
    fn calendar_matches_heap_differentially() {
        // A deliberately tiny wheel (64 ps horizon) so random times constantly
        // cross bucket and lap boundaries and exercise the overflow spill/refill.
        let geometries = [
            CalendarParams {
                bucket_width_ps: 4,
                buckets: 16,
            },
            CalendarParams {
                bucket_width_ps: 512,
                buckets: 4096,
            },
        ];
        for params in geometries {
            let horizon = params.bucket_width_ps * params.buckets as u64;
            for case in 0..96u64 {
                let mut rng = SimRng::seed_from(0xD1FF_0000 + case);
                let mut cal: EventQueue<u32> = EventQueue::calendar(params);
                let mut heap: EventQueue<u32> = EventQueue::with_scheduler(SchedulerKind::Heap);
                let mut next_id = 0u32;
                let mut base = 0u64; // drifts forward like simulated time
                for _ in 0..600 {
                    let action = rng.gen_range(100);
                    if action < 55 {
                        // Push: mix near-future, same-timestamp bursts, exact
                        // boundary hits and far-future spills.
                        let t = match rng.gen_range(6) {
                            0 => base, // "now"
                            1 => base + rng.gen_range(params.bucket_width_ps.max(2)),
                            2 => base + rng.gen_range(horizon), // in-lap
                            3 => base / horizon * horizon + horizon, // lap edge
                            4 => base + horizon * (1 + rng.gen_range(5)), // spill
                            _ => base.saturating_sub(rng.gen_range(50)), // past
                        };
                        let burst = 1 + rng.gen_range(4);
                        for _ in 0..burst {
                            cal.push(Time::from_ps(t), next_id);
                            heap.push(Time::from_ps(t), next_id);
                            next_id += 1;
                        }
                    } else if action < 95 {
                        let a = cal.pop();
                        let b = heap.pop();
                        assert_eq!(a, b, "case {case}: pop diverged");
                        if let Some((t, _)) = a {
                            base = base.max(t.as_ps());
                        }
                    } else {
                        assert_eq!(cal.peek_time(), heap.peek_time(), "case {case}");
                    }
                    assert_eq!(cal.len(), heap.len(), "case {case}");
                }
                // Drain both completely.
                loop {
                    let a = cal.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "case {case}: drain diverged");
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }
}
