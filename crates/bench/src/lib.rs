//! # syncron-bench
//!
//! The evaluation harness of the SynCron (HPCA 2021) reproduction.
//!
//! Every table and figure of the paper's evaluation has a corresponding function in
//! [`experiments`] and a bench target under `benches/` (run with
//! `cargo bench -p syncron-bench --bench <name>`); the bench target simply runs the
//! experiment and prints the regenerated table. `EXPERIMENTS.md` at the repository root
//! records the paper-reported numbers next to the values measured with this harness.
//!
//! All experiments respect the `SYNCRON_SCALE` environment variable (default `1.0`):
//! values below 1 shrink the workloads for quick smoke runs, values above 1 grow them
//! towards the paper's full sizes at the cost of simulation time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;

use syncron_system::config::NdpConfig;
use syncron_system::report::RunReport;
use syncron_system::workload::Workload;

/// A simple text table: the output format of every experiment.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (the paper's table/figure number and caption).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8) + 2))
                .collect::<String>()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().max(8)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Returns the global workload scale factor from `SYNCRON_SCALE` (default 1.0, clamped
/// to a sane range).
pub fn scale() -> f64 {
    std::env::var("SYNCRON_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.05, 100.0)
}

/// Scales an integer quantity by [`scale`], keeping at least `min`.
pub fn scaled(base: u32, min: u32) -> u32 {
    ((base as f64 * scale()).round() as u32).max(min)
}

/// Runs one (configuration, workload) pair.
pub fn run_one(config: &NdpConfig, workload: &(dyn Workload + Sync)) -> RunReport {
    syncron_system::run_workload(config, workload)
}

/// Runs many independent simulations in parallel across the host's cores and returns
/// the reports in input order.
pub fn run_many(jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)>) -> Vec<RunReport> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let jobs: Vec<(usize, NdpConfig, Box<dyn Workload + Send + Sync>)> = jobs
        .into_iter()
        .enumerate()
        .map(|(i, (c, w))| (i, c, w))
        .collect();
    let queue = std::sync::Mutex::new(jobs);
    let results = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop();
                let Some((index, config, workload)) = job else {
                    break;
                };
                let report = syncron_system::run_workload(&config, workload.as_ref());
                results.lock().expect("results lock").push((index, report));
            });
        }
    });
    let mut collected = results.into_inner().expect("results");
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Formats a floating-point cell with two decimals.
pub fn f2(value: f64) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncron_core::MechanismKind;
    use syncron_workloads::micro::LockMicrobench;

    #[test]
    fn table_renders_alignment() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1.00".into()]);
        t.push_row(vec!["longer-name".into(), "2.00".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("longer-name"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn scale_is_sane() {
        let s = scale();
        assert!((0.05..=100.0).contains(&s));
        assert!(scaled(100, 5) >= 5);
    }

    #[test]
    fn run_many_preserves_order() {
        let cfg_a = NdpConfig::builder()
            .units(1)
            .cores_per_unit(3)
            .mechanism(MechanismKind::Ideal)
            .build();
        let cfg_b = NdpConfig::builder()
            .units(2)
            .cores_per_unit(3)
            .mechanism(MechanismKind::Ideal)
            .build();
        let jobs: Vec<(NdpConfig, Box<dyn Workload + Send + Sync>)> = vec![
            (cfg_a, Box::new(LockMicrobench::new(100, 3))),
            (cfg_b, Box::new(LockMicrobench::new(100, 3))),
        ];
        let reports = run_many(jobs);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].total_ops < reports[1].total_ops);
    }
}
