//! Analytic queueing models.
//!
//! The paper's simulation methodology (Table 5) models the queueing latency of the
//! intra-unit buffered crossbar with an **M/D/1** model: Poisson arrivals, a
//! deterministic service time, and a single server. This module provides that model
//! plus a small utilization tracker that estimates the arrival rate from the stream
//! of packets observed during simulation.

use crate::time::Time;

/// Mean waiting time of an M/D/1 queue.
///
/// For arrival rate `lambda` (packets per picosecond) and deterministic service time
/// `service` the mean *waiting* time (excluding service) is
/// `W = rho / (2 * mu * (1 - rho))` where `rho = lambda / mu` and `mu = 1 / service`.
///
/// The returned waiting time is clamped: if the utilization is at or above
/// `max_utilization` (default callers use 0.95) the wait at that utilization is
/// returned instead, keeping the model stable when the simulated network saturates.
///
/// # Example
///
/// ```
/// use syncron_sim::queueing::md1_wait;
/// use syncron_sim::time::Time;
/// // Utilization 0.5 with a 1 ns service time waits 0.5 ns on average.
/// let w = md1_wait(0.0005, Time::from_ns(1), 0.95);
/// assert_eq!(w.as_ps(), 500);
/// ```
pub fn md1_wait(lambda_per_ps: f64, service: Time, max_utilization: f64) -> Time {
    if service == Time::ZERO {
        return Time::ZERO;
    }
    let mu = 1.0 / (service.as_ps() as f64);
    md1_wait_with_mu(lambda_per_ps, mu, max_utilization)
}

/// [`md1_wait`] with the service rate `mu = 1 / service_ps` supplied by the
/// caller.
///
/// `1.0 / s` is one of the three serial-dependency float divides on the crossbar
/// hot path, and it depends only on the packet's service time — one of a handful
/// of values (header- and line-sized packets). Callers that memoize `mu` per
/// service time (see the crossbar) skip that divide per packet; the remaining
/// operations are performed in exactly the order [`md1_wait`] performs them, so
/// the result is bit-identical.
pub fn md1_wait_with_mu(lambda_per_ps: f64, mu: f64, max_utilization: f64) -> Time {
    if lambda_per_ps <= 0.0 || mu <= 0.0 {
        return Time::ZERO;
    }
    let rho = (lambda_per_ps / mu).min(max_utilization.clamp(0.0, 0.999));
    if rho <= 0.0 {
        return Time::ZERO;
    }
    let wait = rho / (2.0 * mu * (1.0 - rho));
    Time::from_ps(wait.round() as u64)
}

/// A two-way direct-mapped memo for pure `u64 → V` computations.
///
/// Sized for key streams that alternate between (at most) two hot values — the
/// network models' packet sizes are almost entirely header- or line-sized, and
/// the remote data path interleaves the two back to back, so one entry would
/// thrash while two make the memo fire. A hit returns exactly what the
/// computation produced for that key, so memoizing a deterministic function is
/// bit-exact by construction.
#[derive(Clone, Copy, Debug)]
pub struct Memo2<V> {
    entries: [Option<(u64, V)>; 2],
    evict: usize,
}

impl<V: Copy> Memo2<V> {
    /// An empty memo.
    pub fn new() -> Self {
        Memo2 {
            entries: [None, None],
            evict: 0,
        }
    }

    /// Returns the memoized value for `key`, computing (and caching) it on a
    /// miss; a miss evicts the older of the two entries.
    pub fn get_or_insert_with(&mut self, key: u64, compute: impl FnOnce() -> V) -> V {
        if let Some((k, v)) = self.entries[0] {
            if k == key {
                return v;
            }
        }
        if let Some((k, v)) = self.entries[1] {
            if k == key {
                return v;
            }
        }
        let value = compute();
        self.entries[self.evict] = Some((key, value));
        self.evict ^= 1;
        value
    }
}

impl<V: Copy> Default for Memo2<V> {
    fn default() -> Self {
        Memo2::new()
    }
}

/// Tracks the recent arrival rate of packets at a network port so the M/D/1 model can
/// be evaluated with a locally-measured `lambda`.
///
/// The tracker uses an exponentially-decayed packet count over a configurable window,
/// which reacts to bursts (high contention phases) but forgets idle periods.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RateTracker {
    window: Time,
    last: Time,
    weight: f64,
    total_packets: u64,
    /// Memoized decay factors: a direct-mapped `dt → exp(-dt/w)` cache over the
    /// exact picosecond gap. Event-driven traffic draws its inter-arrival gaps
    /// from a discrete grid (core cycles, service times, hop latencies) that
    /// repeats heavily across phases, but *not* always back to back — the
    /// predecessor of this cache was a single entry, which burst traffic with
    /// alternating gaps missed almost every time, paying the `exp` call (the
    /// single most expensive float operation on the crossbar hot path) per
    /// packet. Keying on the exact `dt` keeps every returned factor bit-exact.
    factor_cache: Vec<(u64, f64)>,
}

/// Ways in the `dt → exp` factor cache (power of two; 4 KiB per tracker).
const FACTOR_WAYS: usize = 256;
/// Multiplicative hash constant (splitmix64 / golden-ratio derived).
const WAY_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

impl RateTracker {
    /// Creates a tracker with the given averaging window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Time) -> Self {
        assert!(window > Time::ZERO, "rate window must be positive");
        RateTracker {
            window,
            last: Time::ZERO,
            weight: 0.0,
            total_packets: 0,
            // `dt == 0` never reaches the cache (`decay_to` early-returns), so
            // it doubles as the empty marker.
            factor_cache: vec![(0, 1.0); FACTOR_WAYS],
        }
    }

    /// Records the arrival of one packet at time `now`.
    pub fn record(&mut self, now: Time) {
        self.decay_to(now);
        self.weight += 1.0;
        self.total_packets += 1;
    }

    /// Returns the estimated arrival rate in packets per picosecond at time `now`.
    pub fn rate_per_ps(&mut self, now: Time) -> f64 {
        self.decay_to(now);
        self.weight / self.window.as_ps() as f64
    }

    /// Records one packet at `now` and returns the updated arrival rate, with a
    /// single decay step. Bit-identical to `record(now)` followed by
    /// `rate_per_ps(now)` — the second decay there is always a no-op — but the hot
    /// crossbar path pays the `now <= last` comparison once instead of twice.
    pub fn record_and_rate(&mut self, now: Time) -> f64 {
        self.decay_to(now);
        self.weight += 1.0;
        self.total_packets += 1;
        self.weight / self.window.as_ps() as f64
    }

    /// Total packets ever recorded.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    fn decay_to(&mut self, now: Time) {
        if now <= self.last {
            return;
        }
        let dt_ps = (now - self.last).as_ps();
        // Exponential decay with time constant = window; `exp` of an identical
        // `dt` is identical, so the keyed memo is bit-exact.
        let way = (dt_ps.wrapping_mul(WAY_MIX) >> 56) as usize & (FACTOR_WAYS - 1);
        let entry = &mut self.factor_cache[way];
        let factor = if entry.0 == dt_ps {
            entry.1
        } else {
            let w = self.window.as_ps() as f64;
            let factor = (-(dt_ps as f64) / w).exp();
            *entry = (dt_ps, factor);
            factor
        };
        self.weight *= factor;
        self.last = now;
    }
}

/// A single-resource serializer: models a component (DRAM bank, inter-unit link,
/// Synchronization Engine SPU) that can service one request at a time.
///
/// [`Serializer::acquire`] returns the time at which a request arriving at `now` and
/// occupying the resource for `busy` actually starts service, after waiting for all
/// previously accepted requests.
#[derive(Clone, Copy, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Serializer {
    busy_until: Time,
}

impl Serializer {
    /// Creates an idle serializer.
    pub fn new() -> Self {
        Serializer {
            busy_until: Time::ZERO,
        }
    }

    /// Accepts a request arriving at `now` that occupies the resource for `busy`.
    /// Returns the time service **starts**; the resource is then busy until
    /// `start + busy`.
    pub fn acquire(&mut self, now: Time, busy: Time) -> Time {
        let start = now.max(self.busy_until);
        self.busy_until = start + busy;
        start
    }

    /// Time at which the resource becomes idle.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Returns `true` if the resource is idle at `now`.
    pub fn is_idle_at(&self, now: Time) -> bool {
        self.busy_until <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md1_zero_load_is_zero_wait() {
        assert_eq!(md1_wait(0.0, Time::from_ns(1), 0.95), Time::ZERO);
        assert_eq!(md1_wait(0.5, Time::ZERO, 0.95), Time::ZERO);
    }

    #[test]
    fn md1_wait_grows_with_load() {
        let s = Time::from_ns(1);
        let w1 = md1_wait(0.0001, s, 0.95);
        let w2 = md1_wait(0.0005, s, 0.95);
        let w3 = md1_wait(0.0009, s, 0.95);
        assert!(w1 < w2 && w2 < w3, "{w1:?} {w2:?} {w3:?}");
    }

    #[test]
    fn md1_wait_clamps_at_saturation() {
        let s = Time::from_ns(1);
        let at_limit = md1_wait(0.00095, s, 0.95);
        let beyond = md1_wait(0.5, s, 0.95);
        assert_eq!(at_limit, beyond);
    }

    #[test]
    fn md1_with_mu_is_bit_exact_against_the_plain_function() {
        // Supplying the memoized reciprocal must agree with md1_wait everywhere,
        // bit for bit — including boundary cases and near-duplicate lambdas
        // differing in the last mantissa bit.
        for service in [Time::from_ps(400), Time::from_ns(1), Time::from_ps(1600)] {
            let mu = 1.0 / (service.as_ps() as f64);
            let lambdas = [
                0.0,
                1e-9,
                0.0001,
                0.0005,
                f64::from_bits(0.0005f64.to_bits() + 1),
                0.00095,
                0.5,
            ];
            for &l in &lambdas {
                for util in [0.5, 0.95] {
                    assert_eq!(
                        md1_wait_with_mu(l, mu, util),
                        md1_wait(l, service, util),
                        "lambda={l} util={util} service={service}"
                    );
                }
            }
        }
        assert_eq!(md1_wait(0.1, Time::ZERO, 0.95), Time::ZERO);
        assert_eq!(md1_wait_with_mu(0.1, 0.0, 0.95), Time::ZERO);
    }

    #[test]
    fn memo2_caches_two_hot_keys_and_evicts_round_robin() {
        let mut memo: Memo2<u64> = Memo2::new();
        let mut computes = 0;
        let get = |memo: &mut Memo2<u64>, k: u64, computes: &mut u32| {
            memo.get_or_insert_with(k, || {
                *computes += 1;
                k.wrapping_mul(10)
            })
        };
        // Alternating two keys computes each exactly once.
        for _ in 0..5 {
            assert_eq!(get(&mut memo, 16, &mut computes), 160);
            assert_eq!(get(&mut memo, 64, &mut computes), 640);
        }
        assert_eq!(computes, 2);
        // A third key evicts one entry; the sentinel-free design also serves
        // u64::MAX as an ordinary key.
        assert_eq!(
            get(&mut memo, u64::MAX, &mut computes),
            u64::MAX.wrapping_mul(10)
        );
        assert_eq!(computes, 3);
        assert_eq!(
            get(&mut memo, u64::MAX, &mut computes),
            u64::MAX.wrapping_mul(10)
        );
        assert_eq!(computes, 3);
    }

    #[test]
    fn record_and_rate_matches_record_then_rate() {
        let mut a = RateTracker::new(Time::from_ns(100));
        let mut b = RateTracker::new(Time::from_ns(100));
        for i in 0..300u64 {
            let now = Time::from_ps(i * 137);
            b.record(now);
            let rb = b.rate_per_ps(now);
            let ra = a.record_and_rate(now);
            assert_eq!(ra.to_bits(), rb.to_bits(), "step {i}");
        }
        assert_eq!(a.total_packets(), b.total_packets());
    }

    #[test]
    fn rate_tracker_estimates_rate() {
        let mut rt = RateTracker::new(Time::from_ns(100));
        // One packet every 1 ns for 200 packets: rate ≈ 0.001 packets/ps.
        for i in 0..200u64 {
            rt.record(Time::from_ns(i));
        }
        let rate = rt.rate_per_ps(Time::from_ns(200));
        assert!(rate > 0.0004 && rate < 0.0012, "rate {rate}");
        assert_eq!(rt.total_packets(), 200);
    }

    #[test]
    fn rate_tracker_decays_when_idle() {
        let mut rt = RateTracker::new(Time::from_ns(10));
        for i in 0..50u64 {
            rt.record(Time::from_ns(i));
        }
        let busy = rt.rate_per_ps(Time::from_ns(50));
        let idle = rt.rate_per_ps(Time::from_us(1));
        assert!(idle < busy / 10.0);
    }

    #[test]
    fn serializer_orders_requests() {
        let mut s = Serializer::new();
        let start1 = s.acquire(Time::from_ns(0), Time::from_ns(5));
        let start2 = s.acquire(Time::from_ns(1), Time::from_ns(5));
        let start3 = s.acquire(Time::from_ns(20), Time::from_ns(5));
        assert_eq!(start1, Time::from_ns(0));
        assert_eq!(start2, Time::from_ns(5));
        assert_eq!(start3, Time::from_ns(20));
        assert!(s.is_idle_at(Time::from_ns(25)));
        assert!(!s.is_idle_at(Time::from_ns(24)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::SimRng;

    // Deterministic stand-ins for proptest properties (no crates.io access).

    /// The serializer never starts a request before it arrives and never overlaps
    /// two requests.
    #[test]
    fn serializer_no_overlap() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0x5E7A_0000 + case);
            let count = 1 + rng.gen_range(99) as usize;
            let mut reqs: Vec<(u64, u64)> = (0..count)
                .map(|_| (rng.gen_range(10_000), 1 + rng.gen_range(99)))
                .collect();
            let mut s = Serializer::new();
            reqs.sort();
            let mut prev_end = Time::ZERO;
            for &(arrive, busy) in &reqs {
                let start = s.acquire(Time::from_ps(arrive), Time::from_ps(busy));
                assert!(start >= Time::from_ps(arrive));
                assert!(start >= prev_end);
                prev_end = start + Time::from_ps(busy);
            }
        }
    }

    /// M/D/1 waiting time is monotone in the arrival rate.
    #[test]
    fn md1_monotone() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0x3D1_0000 + case);
            let count = 2 + rng.gen_range(18) as usize;
            let mut lams: Vec<f64> = (0..count).map(|_| rng.gen_f64() * 0.002).collect();
            let s = Time::from_ns(1);
            lams.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let waits: Vec<Time> = lams.iter().map(|&l| md1_wait(l, s, 0.95)).collect();
            for w in waits.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }
}
