//! Deterministic open-loop arrival processes.
//!
//! Each client core owns one [`ArrivalGen`] seeded from the workload seed and its
//! core index, so the full arrival stream is a pure function of `(seed, geometry,
//! process)` — independent of scheduler choice, inline-dispatch budget, or message
//! batching. All three processes are built from the same exponential sampler over
//! integer picoseconds; inter-arrival gaps are rounded to ≥ 1 ps so arrival times
//! are strictly increasing.

use syncron_sim::rng::SimRng;
use syncron_sim::time::Time;

/// The shape of the offered-load curve a service core sees.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant average rate (requests per microsecond).
    Poisson {
        /// Average arrival rate in requests per microsecond.
        rate_per_us: f64,
    },
    /// Bursty on–off Markov-modulated Poisson process: exponentially distributed
    /// on-periods (mean `on_us`) during which arrivals come at an elevated rate,
    /// separated by silent off-periods (mean `off_us`). The on-rate is scaled so
    /// the *average* rate over on+off cycles equals `rate_per_us`, making MMPP
    /// points directly comparable with Poisson points at the same offered load.
    Mmpp {
        /// Average arrival rate in requests per microsecond.
        rate_per_us: f64,
        /// Mean on-period duration in microseconds.
        on_us: f64,
        /// Mean off-period duration in microseconds.
        off_us: f64,
    },
    /// Diurnal-shaped load: a non-homogeneous Poisson process whose instantaneous
    /// rate follows `rate · (1 + amplitude · sin(2π·t/period))`, sampled by
    /// thinning against the peak rate. Models the day/night swing of a global
    /// service compressed to simulator timescales.
    Diurnal {
        /// Average arrival rate in requests per microsecond.
        rate_per_us: f64,
        /// Relative swing of the rate curve, in `[0, 1)`.
        amplitude: f64,
        /// Period of one full rate cycle in microseconds.
        period_us: f64,
    },
}

impl ArrivalProcess {
    /// Short name of the process family.
    pub fn kind_name(self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Mmpp { .. } => "mmpp",
            ArrivalProcess::Diurnal { .. } => "diurnal",
        }
    }

    /// The configured average rate in requests per microsecond.
    pub fn rate_per_us(self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_us }
            | ArrivalProcess::Mmpp { rate_per_us, .. }
            | ArrivalProcess::Diurnal { rate_per_us, .. } => rate_per_us,
        }
    }
}

/// Draws an exponential gap with rate `rate_per_us`, rounded to ≥ 1 ps.
fn exp_gap_ps(rng: &mut SimRng, rate_per_us: f64) -> u64 {
    // gen_f64 is in [0, 1), so 1 - u is in (0, 1] and ln() is finite.
    let u = rng.gen_f64();
    let gap_us = -(1.0 - u).ln() / rate_per_us;
    let gap_ps = (gap_us * 1e6).round();
    if gap_ps < 1.0 {
        1
    } else {
        gap_ps as u64
    }
}

/// MMPP generator state: which phase the modulating chain is in and how much of
/// the current phase remains.
#[derive(Clone, Copy, Debug)]
struct MmppState {
    on: bool,
    left_ps: u64,
}

/// A deterministic arrival-time generator for one core.
///
/// [`next_arrival`](Self::next_arrival) returns strictly increasing absolute
/// timestamps; the stream depends only on the process parameters and the seed.
#[derive(Clone, Debug)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: SimRng,
    now_ps: u64,
    mmpp: MmppState,
}

impl ArrivalGen {
    /// Creates a generator producing arrivals from time zero onward.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let mmpp = match process {
            ArrivalProcess::Mmpp { on_us, .. } => MmppState {
                on: true,
                left_ps: exp_gap_ps(&mut rng, 1.0 / on_us),
            },
            _ => MmppState {
                on: true,
                left_ps: 0,
            },
        };
        ArrivalGen {
            process,
            rng,
            now_ps: 0,
            mmpp,
        }
    }

    /// The absolute time of the next arrival. Strictly increasing.
    pub fn next_arrival(&mut self) -> Time {
        let gap = match self.process {
            ArrivalProcess::Poisson { rate_per_us } => exp_gap_ps(&mut self.rng, rate_per_us),
            ArrivalProcess::Mmpp {
                rate_per_us,
                on_us,
                off_us,
            } => self.mmpp_gap(rate_per_us, on_us, off_us),
            ArrivalProcess::Diurnal {
                rate_per_us,
                amplitude,
                period_us,
            } => self.diurnal_gap(rate_per_us, amplitude, period_us),
        };
        self.now_ps += gap;
        Time::from_ps(self.now_ps)
    }

    /// Gap sampling for the on–off MMPP. Candidate exponential gaps drawn at the
    /// on-rate that overrun the current on-window are discarded (memorylessness
    /// makes a redraw in the next window equivalent), and off-windows are skipped
    /// whole, so the silent periods contain no arrivals at all.
    fn mmpp_gap(&mut self, rate_per_us: f64, on_us: f64, off_us: f64) -> u64 {
        // Elevated on-rate preserving the configured average over on+off cycles.
        let on_rate = rate_per_us * (on_us + off_us) / on_us;
        let mut gap = 0u64;
        loop {
            if !self.mmpp.on {
                gap += self.mmpp.left_ps;
                self.mmpp = MmppState {
                    on: true,
                    left_ps: exp_gap_ps(&mut self.rng, 1.0 / on_us),
                };
                continue;
            }
            let candidate = exp_gap_ps(&mut self.rng, on_rate);
            if candidate <= self.mmpp.left_ps {
                self.mmpp.left_ps -= candidate;
                return gap + candidate;
            }
            gap += self.mmpp.left_ps;
            self.mmpp = MmppState {
                on: false,
                left_ps: exp_gap_ps(&mut self.rng, 1.0 / off_us),
            };
        }
    }

    /// Thinning against the peak rate: candidates are drawn from a homogeneous
    /// process at `rate·(1+amplitude)` and accepted with probability
    /// `rate(t)/rate_max`. Rejected candidates still advance the candidate clock
    /// and consume RNG draws, keeping the stream deterministic.
    fn diurnal_gap(&mut self, rate_per_us: f64, amplitude: f64, period_us: f64) -> u64 {
        let rate_max = rate_per_us * (1.0 + amplitude);
        let mut gap = 0u64;
        loop {
            gap += exp_gap_ps(&mut self.rng, rate_max);
            let t_us = (self.now_ps + gap) as f64 * 1e-6;
            let phase = std::f64::consts::TAU * (t_us / period_us);
            let rate_t = rate_per_us * (1.0 + amplitude * phase.sin());
            if self.rng.gen_f64() * rate_max < rate_t {
                return gap.max(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaps(process: ArrivalProcess, seed: u64, n: usize) -> Vec<u64> {
        let mut gen = ArrivalGen::new(process, seed);
        let mut prev = 0u64;
        (0..n)
            .map(|_| {
                let t = gen.next_arrival().as_ps();
                let gap = t - prev;
                prev = t;
                gap
            })
            .collect()
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        // rate 0.01/us -> mean gap 100 us = 1e8 ps.
        let g = gaps(
            ArrivalProcess::Poisson { rate_per_us: 0.01 },
            0xA11CE,
            20_000,
        );
        let mean = g.iter().sum::<u64>() as f64 / g.len() as f64;
        let expect = 1e8;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean gap {mean:.3e} vs expected {expect:.3e}"
        );
    }

    #[test]
    fn poisson_gaps_are_strictly_positive_and_times_increase() {
        let g = gaps(ArrivalProcess::Poisson { rate_per_us: 50.0 }, 3, 5_000);
        assert!(g.iter().all(|&gap| gap >= 1));
    }

    #[test]
    fn mmpp_preserves_average_rate_and_is_burstier_than_poisson() {
        let process = ArrivalProcess::Mmpp {
            rate_per_us: 0.01,
            on_us: 200.0,
            off_us: 800.0,
        };
        let g = gaps(process, 0xB0B, 20_000);
        let mean = g.iter().sum::<u64>() as f64 / g.len() as f64;
        let expect = 1e8; // average rate matches the Poisson case above
        assert!(
            (mean - expect).abs() / expect < 0.10,
            "mean gap {mean:.3e} vs expected {expect:.3e}"
        );
        // Coefficient of variation of inter-arrival gaps: 1 for Poisson,
        // substantially larger for an on-off process with long silences.
        let var = g
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / g.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.3, "MMPP should be bursty, CV = {cv:.2}");
    }

    #[test]
    fn diurnal_preserves_average_rate() {
        let process = ArrivalProcess::Diurnal {
            rate_per_us: 0.01,
            amplitude: 0.8,
            period_us: 5_000.0,
        };
        let g = gaps(process, 0xD1A, 20_000);
        let mean = g.iter().sum::<u64>() as f64 / g.len() as f64;
        let expect = 1e8;
        // Integer full cycles average out the sinusoid; allow a looser tolerance
        // for the partial final cycle.
        assert!(
            (mean - expect).abs() / expect < 0.10,
            "mean gap {mean:.3e} vs expected {expect:.3e}"
        );
    }

    #[test]
    fn same_seed_means_identical_streams() {
        for process in [
            ArrivalProcess::Poisson { rate_per_us: 0.5 },
            ArrivalProcess::Mmpp {
                rate_per_us: 0.5,
                on_us: 10.0,
                off_us: 30.0,
            },
            ArrivalProcess::Diurnal {
                rate_per_us: 0.5,
                amplitude: 0.5,
                period_us: 100.0,
            },
        ] {
            let a = gaps(process, 42, 1_000);
            let b = gaps(process, 42, 1_000);
            assert_eq!(a, b, "{}", process.kind_name());
            let c = gaps(process, 43, 1_000);
            assert_ne!(
                a,
                c,
                "{}: different seeds should differ",
                process.kind_name()
            );
        }
    }

    #[test]
    fn process_accessors() {
        let p = ArrivalProcess::Mmpp {
            rate_per_us: 2.0,
            on_us: 1.0,
            off_us: 3.0,
        };
        assert_eq!(p.kind_name(), "mmpp");
        assert_eq!(p.rate_per_us(), 2.0);
        assert_eq!(
            ArrivalProcess::Poisson { rate_per_us: 1.0 }.kind_name(),
            "poisson"
        );
        assert_eq!(
            ArrivalProcess::Diurnal {
                rate_per_us: 1.0,
                amplitude: 0.2,
                period_us: 10.0
            }
            .kind_name(),
            "diurnal"
        );
    }
}
