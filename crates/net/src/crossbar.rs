//! Intra-unit buffered crossbar model.
//!
//! Table 5 of the paper: "buffered crossbar network with packet flow control; 1-cycle
//! arbiter; 1-cycle per hop; 0.4 pJ/bit per hop; M/D/1 model for queueing latency".
//!
//! The model composes a fixed pipeline latency (arbiter + hops) with an analytic
//! M/D/1 queueing delay whose arrival rate is measured online from the packet stream
//! crossing the crossbar. The measured-load approach lets contention phases (e.g. all
//! 16 cores hammering the local Synchronization Engine) see growing queueing delay
//! without simulating individual flits.

use syncron_sim::queueing::{md1_wait_with_mu, Md1Model, Md1Table, RateTracker};
use syncron_sim::stats::Counter;
use syncron_sim::time::{Freq, Time};

/// Configuration of an intra-unit crossbar.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CrossbarConfig {
    /// Core/network clock used for the arbiter and hop cycles.
    pub clock: Freq,
    /// Arbiter latency in cycles (Table 5: 1).
    pub arbiter_cycles: u64,
    /// Number of hops a packet traverses on average (request + response paths are
    /// charged separately by the caller).
    pub hops: u64,
    /// Flit width in bytes; a packet of `n` bytes occupies the switch for
    /// `ceil(n / flit_bytes)` cycles.
    pub flit_bytes: u64,
    /// Energy per bit per hop, in picojoules (Table 5: 0.4 pJ/bit/hop).
    pub pj_per_bit_hop: f64,
    /// Maximum utilization the M/D/1 model is evaluated at (stability clamp).
    pub max_utilization: f64,
    /// How the M/D/1 waiting time is evaluated per packet: `Exact` runs the
    /// closed form (two serial f64 divides), `Quantized` (default) interpolates
    /// a per-service-time [`Md1Table`] — within [`Md1Table::ERROR_BOUND_PS`] of
    /// exact, but a different baseline bit-wise.
    pub md1_model: Md1Model,
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        CrossbarConfig {
            clock: Freq::ghz(2.5),
            arbiter_cycles: 1,
            hops: 2,
            flit_bytes: 16,
            pj_per_bit_hop: 0.4,
            max_utilization: 0.95,
            md1_model: Md1Model::default(),
        }
    }
}

/// Per-packet-size derived quantities: the deterministic service time, its
/// reciprocal (for the exact model) and, under [`Md1Model::Quantized`], the
/// precomputed waiting-time table. A scenario crosses a handful of distinct
/// packet sizes (16 B tokens, line-sized data), so a linear scan over this
/// small vector beats any hashing and — unlike the two-way memo it replaces —
/// never evicts, so each table is built exactly once.
#[derive(Clone, Debug)]
struct ServiceClass {
    bytes: u64,
    service: Time,
    mu: f64,
    table: Option<Md1Table>,
}

/// Traffic and energy counters of a [`Crossbar`].
#[derive(Clone, Copy, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CrossbarStats {
    /// Packets transferred.
    pub packets: Counter,
    /// Bytes transferred.
    pub bytes: Counter,
    /// Accumulated queueing delay (for average-latency reporting).
    pub queueing_ps: Counter,
}

/// The intra-unit crossbar connecting NDP cores, the Synchronization Engine and the
/// memory controller of one NDP unit.
///
/// # Example
///
/// ```
/// use syncron_net::crossbar::{Crossbar, CrossbarConfig};
/// use syncron_sim::Time;
///
/// let mut xbar = Crossbar::new(CrossbarConfig::default());
/// let latency = xbar.transfer(Time::ZERO, 64);
/// assert!(latency >= Time::from_ps(3 * 400)); // arbiter + 2 hops at 2.5 GHz
/// assert_eq!(xbar.stats().bytes.get(), 64);
/// ```
#[derive(Clone, Debug)]
pub struct Crossbar {
    config: CrossbarConfig,
    rate: RateTracker,
    stats: CrossbarStats,
    energy_pj: f64,
    /// Arbiter + hop latency, fixed by the configuration; computed once instead of
    /// per packet.
    pipeline: Time,
    /// `bytes → ServiceClass` cache: a hit skips the flit division and — under
    /// the quantized model — every per-packet divide of the M/D/1 evaluation.
    classes: Vec<ServiceClass>,
}

impl Crossbar {
    /// Creates an idle crossbar.
    pub fn new(config: CrossbarConfig) -> Self {
        Crossbar {
            config,
            // Measure load over a 2 µs window: long enough to smooth individual
            // packets, short enough to follow contention phases.
            rate: RateTracker::new(Time::from_us(2)),
            stats: CrossbarStats::default(),
            energy_pj: 0.0,
            pipeline: config
                .clock
                .cycles_to_ps(config.arbiter_cycles + config.hops),
            classes: Vec::new(),
        }
    }

    /// The crossbar's configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Transfers a packet of `bytes` across the crossbar at time `now` and returns the
    /// latency the packet experiences (pipeline + serialization + queueing).
    pub fn transfer(&mut self, now: Time, bytes: u64) -> Time {
        let idx = match self.classes.iter().position(|c| c.bytes == bytes) {
            Some(idx) => idx,
            None => {
                let cfg = self.config;
                let flits = bytes.div_ceil(cfg.flit_bytes).max(1);
                let service = cfg.clock.cycles_to_ps(flits);
                // Exactly the reciprocal md1_wait would compute; caching it is
                // what makes the exact per-packet M/D/1 evaluation two divides
                // instead of three. The quantized model goes further and
                // precomputes the whole waiting-time curve.
                let mu = if service == Time::ZERO {
                    0.0
                } else {
                    1.0 / (service.as_ps() as f64)
                };
                let table = match cfg.md1_model {
                    Md1Model::Exact => None,
                    Md1Model::Quantized => Some(Md1Table::new(service, cfg.max_utilization)),
                };
                self.classes.push(ServiceClass {
                    bytes,
                    service,
                    mu,
                    table,
                });
                self.classes.len() - 1
            }
        };
        let pipeline = self.pipeline;

        let lambda = self.rate.record_and_rate(now);
        let class = &self.classes[idx];
        let service = class.service;
        let queueing = if service == Time::ZERO {
            Time::ZERO
        } else {
            match &class.table {
                Some(table) => table.wait(lambda),
                None => md1_wait_with_mu(lambda, class.mu, self.config.max_utilization),
            }
        };

        self.stats.packets.inc();
        self.stats.bytes.add(bytes);
        self.stats.queueing_ps.add(queueing.as_ps());
        self.energy_pj += bytes as f64 * 8.0 * self.config.pj_per_bit_hop * self.config.hops as f64;

        pipeline + service + queueing
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CrossbarStats {
        &self.stats
    }

    /// Total crossbar energy in picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.energy_pj
    }

    /// Average queueing delay per packet.
    pub fn avg_queueing(&self) -> Time {
        let pkts = self.stats.packets.get();
        self.stats
            .queueing_ps
            .get()
            .checked_div(pkts)
            .map_or(Time::ZERO, Time::from_ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_latency_matches_pipeline() {
        let mut xbar = Crossbar::new(CrossbarConfig::default());
        // A single 16-byte packet on an idle crossbar: 1 arbiter + 2 hops + 1 flit cycle.
        let lat = xbar.transfer(Time::ZERO, 16);
        assert_eq!(lat, Time::from_ps(4 * 400));
    }

    #[test]
    fn larger_packets_take_longer() {
        let mut a = Crossbar::new(CrossbarConfig::default());
        let mut b = Crossbar::new(CrossbarConfig::default());
        let small = a.transfer(Time::ZERO, 16);
        let large = b.transfer(Time::ZERO, 64);
        assert!(large > small);
    }

    #[test]
    fn queueing_grows_under_load() {
        let mut xbar = Crossbar::new(CrossbarConfig::default());
        let idle = xbar.transfer(Time::ZERO, 64);
        // Hammer the crossbar with a packet every nanosecond.
        let mut last = Time::ZERO;
        for i in 1..2000u64 {
            last = xbar.transfer(Time::from_ns(i), 64);
        }
        assert!(
            last > idle,
            "loaded latency {last} should exceed idle {idle}"
        );
        assert!(xbar.avg_queueing() > Time::ZERO);
    }

    #[test]
    fn cached_fast_path_matches_uncached_model() {
        // Drive the crossbar and a hand-rolled (RateTracker + md1_wait /
        // Md1Table) reference in lockstep over a bursty, repeating packet
        // stream: for each model the ServiceClass / record_and_rate fast path
        // must reproduce every latency bit for bit.
        use syncron_sim::queueing::{md1_wait, RateTracker};
        for model in Md1Model::ALL {
            let cfg = CrossbarConfig {
                md1_model: model,
                ..CrossbarConfig::default()
            };
            let mut xbar = Crossbar::new(cfg);
            let mut rate = RateTracker::new(Time::from_us(2));
            for round in 0..50u64 {
                for (offset, bytes) in [(0u64, 16u64), (0, 16), (3, 64), (40, 16), (40, 64)] {
                    let now = Time::from_ns(round * 200 + offset);
                    let flits = bytes.div_ceil(cfg.flit_bytes).max(1);
                    let service = cfg.clock.cycles_to_ps(flits);
                    let pipeline = cfg.clock.cycles_to_ps(cfg.arbiter_cycles + cfg.hops);
                    rate.record(now);
                    let lambda = rate.rate_per_ps(now);
                    let wait = match model {
                        Md1Model::Exact => md1_wait(lambda, service, cfg.max_utilization),
                        Md1Model::Quantized => {
                            Md1Table::new(service, cfg.max_utilization).wait(lambda)
                        }
                    };
                    let expected = pipeline + service + wait;
                    assert_eq!(
                        xbar.transfer(now, bytes),
                        expected,
                        "{model:?} round {round}"
                    );
                }
            }
        }
    }

    #[test]
    fn quantized_crossbar_tracks_exact_within_the_documented_bound() {
        // End-to-end version of the queueing-layer error-bound property: two
        // crossbars fed the identical packet stream, one per model, never
        // disagree by more than Md1Table::ERROR_BOUND_PS per packet.
        let exact_cfg = CrossbarConfig {
            md1_model: Md1Model::Exact,
            ..CrossbarConfig::default()
        };
        let quant_cfg = CrossbarConfig {
            md1_model: Md1Model::Quantized,
            ..CrossbarConfig::default()
        };
        let mut exact = Crossbar::new(exact_cfg);
        let mut quant = Crossbar::new(quant_cfg);
        for i in 0..4000u64 {
            // Ramp from idle to saturation: inter-arrival shrinks as i grows.
            let now = Time::from_ps(i * (4000 - i / 2));
            let bytes = if i % 3 == 0 { 64 } else { 16 };
            let a = exact.transfer(now, bytes);
            let b = quant.transfer(now, bytes);
            let diff = a.as_ps().abs_diff(b.as_ps());
            assert!(
                diff <= Md1Table::ERROR_BOUND_PS,
                "packet {i}: exact {a} vs quantized {b}"
            );
        }
        assert_eq!(exact.stats().packets.get(), quant.stats().packets.get());
    }

    #[test]
    fn energy_proportional_to_bytes_and_hops() {
        let cfg = CrossbarConfig::default();
        let mut xbar = Crossbar::new(cfg);
        xbar.transfer(Time::ZERO, 100);
        let expected = 100.0 * 8.0 * cfg.pj_per_bit_hop * cfg.hops as f64;
        assert!((xbar.energy_pj() - expected).abs() < 1e-9);
    }

    #[test]
    fn stats_accumulate() {
        let mut xbar = Crossbar::new(CrossbarConfig::default());
        for i in 0..10u64 {
            xbar.transfer(Time::from_ns(i * 100), 32);
        }
        assert_eq!(xbar.stats().packets.get(), 10);
        assert_eq!(xbar.stats().bytes.get(), 320);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use syncron_sim::SimRng;

    /// Latency is always at least the unloaded pipeline latency and finite.
    ///
    /// Deterministic stand-in for a proptest property (no crates.io access).
    #[test]
    fn latency_bounded_below() {
        for case in 0..64u64 {
            let mut rng = SimRng::seed_from(0x8BA7_0000 + case);
            let count = 1 + rng.gen_range(199) as usize;
            let mut pkts: Vec<(u64, u64)> = (0..count)
                .map(|_| (rng.gen_range(1_000_000), 1 + rng.gen_range(255)))
                .collect();
            let cfg = CrossbarConfig::default();
            let mut xbar = Crossbar::new(cfg);
            let floor = cfg.clock.cycles_to_ps(cfg.arbiter_cycles + cfg.hops + 1);
            pkts.sort();
            for &(t, bytes) in &pkts {
                let lat = xbar.transfer(Time::from_ps(t), bytes);
                assert!(lat >= floor);
                assert!(lat < Time::from_ms(1));
            }
        }
    }
}
