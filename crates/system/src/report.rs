//! Evaluation reports.
//!
//! A [`RunReport`] captures everything the paper's evaluation figures need from one
//! simulation: execution time (speedups, Figures 10–13, 16–23), energy broken down into
//! cache / network / memory (Figure 14), data movement inside and across NDP units
//! (Figure 15), and the synchronization mechanism's statistics (ST occupancy for
//! Table 7 and Figure 19, overflow fractions for Figures 22 and 23).

use syncron_core::mechanism::SyncMechanismStats;
use syncron_mem::energy::EnergyTally;
pub use syncron_net::fault::FaultStats;
use syncron_net::traffic::TrafficStats;
use syncron_sim::stats::LogHistogram;
use syncron_sim::time::Time;

/// Host-side simulator performance counters for one run.
///
/// Unlike every other [`RunReport`] field these depend on the host machine and
/// load, not on the simulated system: two runs of the same scenario produce
/// identical simulation results but different `SimPerf`. Determinism comparisons
/// ([`RunReport::same_simulation`]) therefore ignore this struct; the throughput
/// benchmarks (`BENCH_simcore.json`) are built from it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimPerf {
    /// Wall-clock duration of the run loop in seconds.
    pub wall_seconds: f64,
    /// Events the run loop delivered, including inline-dispatched core steps and
    /// the deliveries of a truncated (`completed = false`) run.
    pub events_delivered: u64,
    /// Shards the run actually executed with (`1` = sequential, which includes
    /// every sequential fallback of a `sim_threads > 1` request). Host-side
    /// like the rest of [`SimPerf`]: the simulated result never depends on it.
    pub shards: usize,
}

impl SimPerf {
    /// Simulator throughput in delivered events per wall-clock second (`0.0` when
    /// the run was too fast for the clock to resolve).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events_delivered as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Tail-latency summary of an open-loop run: per-request admission→completion
/// times (including queueing delay while the serving core was backlogged),
/// aggregated across all client cores.
///
/// Present only when the workload measures per-request latency (the open-loop
/// service workloads); closed-loop workloads leave
/// [`RunReport::latency`] as `None`. The quantiles come from the interpolated
/// [`LogHistogram`], so they are simulation-determined and compared bit-for-bit
/// by [`RunReport::divergence_from`].
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LatencyReport {
    /// Requests measured.
    pub ops: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: f64,
    /// Median latency in nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: f64,
    /// 99.9th-percentile latency in nanoseconds.
    pub p999_ns: f64,
    /// Worst recorded latency in nanoseconds.
    pub max_ns: u64,
}

impl LatencyReport {
    /// Summarizes a latency histogram (nanosecond samples). Returns `None` for an
    /// empty histogram.
    pub fn from_histogram(hist: &LogHistogram) -> Option<LatencyReport> {
        if hist.total() == 0 {
            return None;
        }
        Some(LatencyReport {
            ops: hist.total(),
            mean_ns: hist.mean(),
            p50_ns: hist.quantile(0.50).expect("non-empty"),
            p99_ns: hist.quantile(0.99).expect("non-empty"),
            p999_ns: hist.quantile(0.999).expect("non-empty"),
            max_ns: hist.max(),
        })
    }
}

/// How the liveness watchdog detected that a run was stuck.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StallKind {
    /// Every event queue drained while unfinished cores were still parked on
    /// synchronization variables: a classic deadlock.
    EmptyFrontier,
    /// Events kept circulating but no core consumed a program action for
    /// longer than the watchdog threshold: a livelock (e.g. a retransmission
    /// storm under total message loss).
    NoProgress,
}

/// One core the watchdog found blocked, and what it was waiting on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockedCore {
    /// NDP unit of the blocked core.
    pub unit: usize,
    /// Core index within the unit.
    pub core: usize,
    /// Address of the synchronization variable the core's pending request
    /// named (the lock/barrier/semaphore/condvar it is waiting on).
    pub addr: u64,
}

/// Structured diagnosis of a stalled run, produced by the liveness watchdog.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StallReport {
    /// How the stall was detected.
    pub kind: StallKind,
    /// The blocked cores and the sync-variable addresses they wait on, in
    /// global core order (truncated to the first
    /// [`StallReport::BLOCKED_CAP`]; `blocked_total` has the full count).
    pub blocked: Vec<BlockedCore>,
    /// Total number of cores blocked on a synchronization request.
    pub blocked_total: usize,
    /// Total number of cores that had not finished their program.
    pub unfinished: usize,
}

impl StallReport {
    /// Maximum blocked cores listed individually in a report.
    pub const BLOCKED_CAP: usize = 16;
}

/// Why a run ended without completing (`RunReport::completed == false`).
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IncompleteReason {
    /// The global event safety limit (`max_events`) was exhausted.
    EventBudget,
    /// The liveness watchdog aborted the run; the report names the blocked
    /// cores and the addresses they wait on.
    Stalled(StallReport),
    /// The simulation panicked; the payload is the panic message. Synthesized
    /// by the harness runner's per-scenario isolation — the machine itself
    /// never returns this.
    Panicked(String),
}

impl IncompleteReason {
    /// Compact machine-readable label (the CSV `incomplete_reason` cell).
    pub fn label(&self) -> &'static str {
        match self {
            IncompleteReason::EventBudget => "event-budget",
            IncompleteReason::Stalled(s) => match s.kind {
                StallKind::EmptyFrontier => "stalled-deadlock",
                StallKind::NoProgress => "stalled-no-progress",
            },
            IncompleteReason::Panicked(_) => "panicked",
        }
    }
}

/// The outcome of one workload run on one configuration.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Synchronization mechanism name.
    pub mechanism: String,
    /// Simulated execution time (from start until the last client core finished).
    pub sim_time: Time,
    /// Whether every core finished before the event safety limit was hit.
    pub completed: bool,
    /// Application-level operations completed (data-structure ops, vertices, …).
    pub total_ops: u64,
    /// Instructions executed by client cores (compute actions).
    pub instructions: u64,
    /// Load actions executed.
    pub loads: u64,
    /// Store actions executed.
    pub stores: u64,
    /// Synchronization requests issued.
    pub sync_requests: u64,
    /// Energy breakdown.
    pub energy: EnergyTally,
    /// Data movement split into intra-unit and inter-unit bytes.
    pub traffic: TrafficStats,
    /// Synchronization mechanism statistics (messages, memory accesses, ST occupancy).
    pub sync: SyncMechanismStats,
    /// DRAM accesses performed (all units).
    pub dram_accesses: u64,
    /// Hit ratio across the client cores' L1 caches.
    pub l1_hit_ratio: f64,
    /// Per-request tail latency of open-loop runs; `None` for closed-loop
    /// workloads.
    pub latency: Option<LatencyReport>,
    /// Typed reason the run ended incomplete; `None` exactly when
    /// [`RunReport::completed`] is `true`.
    pub incomplete: Option<IncompleteReason>,
    /// Fault-injection and recovery counters; `None` when fault injection is
    /// disabled, `Some` (possibly all-zero) when enabled. Compared by
    /// [`RunReport::divergence_from`] treating `None` as all-zero, so an
    /// enabled-but-all-zero run is equivalent to a faults-off run.
    pub faults: Option<FaultStats>,
    /// Host-side simulator performance (wall time, delivered events). Not part of
    /// the simulated result; ignored by [`RunReport::same_simulation`].
    pub perf: SimPerf,
}

impl RunReport {
    /// Builds a zeroed report for a run that produced no results at all —
    /// used by the harness runner to record a panicked scenario in its result
    /// set instead of aborting the whole sweep.
    pub fn failed(
        workload: impl Into<String>,
        mechanism: impl Into<String>,
        reason: IncompleteReason,
    ) -> RunReport {
        RunReport {
            workload: workload.into(),
            mechanism: mechanism.into(),
            sim_time: Time::ZERO,
            completed: false,
            total_ops: 0,
            instructions: 0,
            loads: 0,
            stores: 0,
            sync_requests: 0,
            energy: EnergyTally::default(),
            traffic: TrafficStats::default(),
            sync: SyncMechanismStats::default(),
            dram_accesses: 0,
            l1_hit_ratio: 0.0,
            latency: None,
            incomplete: Some(reason),
            faults: None,
            perf: SimPerf::default(),
        }
    }

    /// Throughput in operations per millisecond (the unit of Figure 11).
    pub fn ops_per_ms(&self) -> f64 {
        let ms = self.sim_time.as_ms_f64();
        if ms <= 0.0 {
            0.0
        } else {
            self.total_ops as f64 / ms
        }
    }

    /// Throughput in operations per microsecond (the unit of Figure 16).
    pub fn ops_per_us(&self) -> f64 {
        self.ops_per_ms() / 1000.0
    }

    /// Speedup of this run relative to `baseline` (`> 1` means this run is faster).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        let own = self.sim_time.as_ps();
        if own == 0 {
            return 0.0;
        }
        baseline.sim_time.as_ps() as f64 / own as f64
    }

    /// Slowdown of this run relative to `baseline` (`> 1` means this run is slower).
    pub fn slowdown_over(&self, baseline: &RunReport) -> f64 {
        let base = baseline.sim_time.as_ps();
        if base == 0 {
            return 0.0;
        }
        self.sim_time.as_ps() as f64 / base as f64
    }

    /// Ratio of this run's total energy to `baseline`'s (`< 1` means this run uses
    /// less energy).
    pub fn energy_ratio_over(&self, baseline: &RunReport) -> f64 {
        let base = baseline.energy.total_pj();
        if base <= 0.0 {
            return 0.0;
        }
        self.energy.total_pj() / base
    }

    /// Ratio of this run's total data movement to `baseline`'s.
    pub fn data_movement_ratio_over(&self, baseline: &RunReport) -> f64 {
        let base = baseline.traffic.total_bytes();
        if base == 0 {
            return 0.0;
        }
        self.traffic.total_bytes() as f64 / base as f64
    }

    /// Whether two reports describe the same simulation outcome, ignoring the
    /// host-side [`SimPerf`] counters.
    ///
    /// This is the determinism contract the scheduler-differential tests enforce:
    /// the calendar-queue and heap schedulers must produce bit-identical reports.
    pub fn same_simulation(&self, other: &RunReport) -> bool {
        self.divergence_from(other).is_none()
    }

    /// Names the first simulation-determined field in which `self` and `other`
    /// differ (ignoring [`SimPerf`]), or `None` when the reports agree.
    ///
    /// Floating-point fields are compared bit-for-bit: a deterministic simulator
    /// must reproduce them exactly, not approximately.
    pub fn divergence_from(&self, other: &RunReport) -> Option<String> {
        macro_rules! diff {
            ($field:ident) => {
                if self.$field != other.$field {
                    return Some(format!(
                        "{}: {:?} != {:?}",
                        stringify!($field),
                        self.$field,
                        other.$field
                    ));
                }
            };
        }
        diff!(workload);
        diff!(mechanism);
        diff!(sim_time);
        diff!(completed);
        diff!(total_ops);
        diff!(instructions);
        diff!(loads);
        diff!(stores);
        diff!(sync_requests);
        diff!(traffic);
        diff!(sync);
        diff!(dram_accesses);
        diff!(incomplete);
        // Fault counters: `None` (injection disabled) compares equal to
        // `Some` all-zero (enabled but nothing fired) — the knob-aliveness
        // contract; any injected fault or recovery must agree exactly.
        let (fault_a, fault_b) = (
            self.faults.unwrap_or_default(),
            other.faults.unwrap_or_default(),
        );
        if fault_a != fault_b {
            return Some(format!("faults: {fault_a:?} != {fault_b:?}"));
        }
        match (&self.latency, &other.latency) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                if a.ops != b.ops || a.max_ns != b.max_ns {
                    return Some(format!("latency: {a:?} != {b:?}"));
                }
                for (name, x, y) in [
                    ("latency.mean_ns", a.mean_ns, b.mean_ns),
                    ("latency.p50_ns", a.p50_ns, b.p50_ns),
                    ("latency.p99_ns", a.p99_ns, b.p99_ns),
                    ("latency.p999_ns", a.p999_ns, b.p999_ns),
                ] {
                    if x.to_bits() != y.to_bits() {
                        return Some(format!("{name}: {x:?} != {y:?}"));
                    }
                }
            }
            (a, b) => return Some(format!("latency: {a:?} != {b:?}")),
        }
        for (name, a, b) in [
            (
                "energy.cache_pj",
                self.energy.cache_pj,
                other.energy.cache_pj,
            ),
            (
                "energy.network_pj",
                self.energy.network_pj,
                other.energy.network_pj,
            ),
            (
                "energy.memory_pj",
                self.energy.memory_pj,
                other.energy.memory_pj,
            ),
            ("l1_hit_ratio", self.l1_hit_ratio, other.l1_hit_ratio),
        ] {
            if a.to_bits() != b.to_bits() {
                return Some(format!("{name}: {a:?} != {b:?}"));
            }
        }
        None
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<16} {:<12} time={:<12} ops/ms={:<10.1} energy={:.1}uJ inter-unit={:.0}KB sync-msgs={}",
            self.workload,
            self.mechanism,
            self.sim_time.to_string(),
            self.ops_per_ms(),
            self.energy.total_uj(),
            self.traffic.inter_unit_bytes as f64 / 1024.0,
            self.sync.local_messages + self.sync.global_messages,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(time_ns: u64, ops: u64) -> RunReport {
        RunReport {
            workload: "test".into(),
            mechanism: "SynCron".into(),
            sim_time: Time::from_ns(time_ns),
            completed: true,
            total_ops: ops,
            instructions: 0,
            loads: 0,
            stores: 0,
            sync_requests: 0,
            energy: EnergyTally {
                cache_pj: 10.0,
                network_pj: 20.0,
                memory_pj: 70.0,
            },
            traffic: TrafficStats {
                intra_unit_bytes: 1000,
                inter_unit_bytes: 500,
                intra_unit_msgs: 10,
                inter_unit_msgs: 5,
            },
            sync: SyncMechanismStats::default(),
            dram_accesses: 0,
            l1_hit_ratio: 0.5,
            latency: None,
            incomplete: None,
            faults: None,
            perf: SimPerf::default(),
        }
    }

    #[test]
    fn throughput_units() {
        let r = report(1_000_000, 500); // 1 ms, 500 ops
        assert!((r.ops_per_ms() - 500.0).abs() < 1e-9);
        assert!((r.ops_per_us() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn speedup_and_slowdown_are_reciprocal() {
        let fast = report(1_000, 100);
        let slow = report(2_000, 100);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-9);
        assert!((slow.slowdown_over(&fast) - 2.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn energy_and_data_ratios() {
        let a = report(1_000, 100);
        let mut b = report(1_000, 100);
        b.energy.memory_pj = 170.0;
        b.traffic.inter_unit_bytes = 2000;
        assert!((b.energy_ratio_over(&a) - 2.0).abs() < 1e-9);
        assert!((b.data_movement_ratio_over(&a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn perf_throughput_and_zero_wall_time() {
        let perf = SimPerf {
            wall_seconds: 0.5,
            events_delivered: 1_000_000,
            shards: 1,
        };
        assert!((perf.events_per_sec() - 2_000_000.0).abs() < 1e-6);
        assert_eq!(SimPerf::default().events_per_sec(), 0.0);
    }

    #[test]
    fn same_simulation_ignores_perf_but_not_results() {
        let a = report(1_000, 100);
        let mut b = a.clone();
        // Host-side counters differ between any two runs; they must not count.
        b.perf = SimPerf {
            wall_seconds: 3.5,
            events_delivered: 42,
            shards: 8,
        };
        assert!(a.same_simulation(&b));
        assert_eq!(a.divergence_from(&b), None);
        // Any simulated field difference is named.
        b.loads = 1;
        assert!(!a.same_simulation(&b));
        assert!(a.divergence_from(&b).unwrap().contains("loads"));
        let mut c = a.clone();
        c.energy.network_pj += 0.25;
        assert!(a.divergence_from(&c).unwrap().contains("energy.network_pj"));
    }

    #[test]
    fn latency_report_summarizes_histogram() {
        let mut hist = LogHistogram::new();
        assert!(LatencyReport::from_histogram(&hist).is_none());
        for v in 1..=1000u64 {
            hist.record(v);
        }
        let lat = LatencyReport::from_histogram(&hist).unwrap();
        assert_eq!(lat.ops, 1000);
        assert_eq!(lat.max_ns, 1000);
        assert!(lat.p50_ns <= lat.p99_ns && lat.p99_ns <= lat.p999_ns);
        assert!((lat.mean_ns - 500.5).abs() < 1e-9);
    }

    #[test]
    fn divergence_covers_latency() {
        let mut a = report(1_000, 100);
        let b = a.clone();
        assert!(a.same_simulation(&b));
        let lat = LatencyReport {
            ops: 10,
            mean_ns: 5.0,
            p50_ns: 4.0,
            p99_ns: 9.0,
            p999_ns: 9.9,
            max_ns: 10,
        };
        a.latency = Some(lat);
        // Open-loop vs closed-loop is a divergence.
        assert!(a.divergence_from(&b).unwrap().contains("latency"));
        let mut c = a.clone();
        c.latency = Some(LatencyReport {
            p99_ns: 9.000000001,
            ..lat
        });
        // Bit-for-bit comparison of the quantiles.
        assert!(a.divergence_from(&c).unwrap().contains("latency.p99_ns"));
        c.latency = Some(lat);
        assert!(a.same_simulation(&c));
    }

    #[test]
    fn summary_contains_key_fields() {
        let s = report(1_000_000, 500).summary();
        assert!(s.contains("SynCron"));
        assert!(s.contains("ops/ms"));
    }

    #[test]
    fn divergence_covers_incomplete_reason_and_fault_counters() {
        let a = report(1_000, 100);
        let mut b = a.clone();
        b.completed = false;
        b.incomplete = Some(IncompleteReason::EventBudget);
        // completed differs first; with completed equal, the typed reason
        // itself is compared.
        let mut c = a.clone();
        c.incomplete = Some(IncompleteReason::Stalled(StallReport {
            kind: StallKind::EmptyFrontier,
            blocked: vec![BlockedCore {
                unit: 0,
                core: 3,
                addr: 0x40,
            }],
            blocked_total: 1,
            unfinished: 1,
        }));
        assert!(a.divergence_from(&c).unwrap().contains("incomplete"));

        // Faults: None == Some(all-zero) (knob aliveness), any counter differs.
        let mut d = a.clone();
        d.faults = Some(FaultStats::default());
        assert!(a.same_simulation(&d));
        d.faults = Some(FaultStats {
            dropped: 2,
            retransmitted: 2,
            ..FaultStats::default()
        });
        assert!(a.divergence_from(&d).unwrap().contains("faults"));
    }

    #[test]
    fn incomplete_reason_labels_are_compact() {
        assert_eq!(IncompleteReason::EventBudget.label(), "event-budget");
        assert_eq!(
            IncompleteReason::Panicked("boom".into()).label(),
            "panicked"
        );
        let stall = |kind| {
            IncompleteReason::Stalled(StallReport {
                kind,
                blocked: Vec::new(),
                blocked_total: 0,
                unfinished: 2,
            })
        };
        assert_eq!(stall(StallKind::EmptyFrontier).label(), "stalled-deadlock");
        assert_eq!(stall(StallKind::NoProgress).label(), "stalled-no-progress");
    }

    #[test]
    fn failed_reports_are_incomplete_and_zeroed() {
        let r = RunReport::failed("wl", "SynCron", IncompleteReason::Panicked("boom".into()));
        assert!(!r.completed);
        assert_eq!(r.total_ops, 0);
        assert_eq!(
            r.incomplete,
            Some(IncompleteReason::Panicked("boom".into()))
        );
    }
}
